(* Cycle-accurate simulation tests: the §4.3 functional claims (skid-buffer
   control = stall control in outputs and throughput; depth N+1 suffices)
   and the §4.2 claims (pruning preserves streams, barriers couple flows). *)

open Hlsb_ir
module Fifo = Hlsb_sim.Fifo
module Pipeline = Hlsb_sim.Pipeline
module Network = Hlsb_sim.Network
module Rng = Hlsb_util.Rng

(* ---- Fifo ---- *)

let test_fifo_order () =
  let f = Fifo.create ~depth:4 in
  Fifo.push f 1;
  Fifo.push f 2;
  Fifo.push f 3;
  Alcotest.(check (option int)) "peek" (Some 1) (Fifo.peek f);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Fifo.pop f);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Fifo.pop f);
  Alcotest.(check int) "length" 1 (Fifo.length f)

let test_fifo_overflow_flag () =
  let f = Fifo.create ~depth:2 in
  Fifo.push f 1;
  Fifo.push f 2;
  Alcotest.(check bool) "full" true (Fifo.is_full f);
  Alcotest.(check bool) "no overflow yet" false (Fifo.overflowed f);
  Fifo.push f 3;
  Alcotest.(check bool) "overflow recorded" true (Fifo.overflowed f);
  Alcotest.(check int) "dropped" 2 (Fifo.length f)

let test_fifo_high_water () =
  let f = Fifo.create ~depth:8 in
  List.iter (Fifo.push f) [ 1; 2; 3 ];
  ignore (Fifo.pop f);
  ignore (Fifo.pop f);
  Alcotest.(check int) "high water" 3 (Fifo.max_occupancy f)

(* ---- Pipeline control ---- *)

let inputs n = List.init n (fun i -> i)

let always_ready _ = true
let never_stall = always_ready

let ready_pattern seed period duty cycle =
  ignore seed;
  cycle mod period < duty

let test_stall_identity () =
  let r =
    Pipeline.run_stall ~stages:5 ~inputs:(inputs 20) ~ready:never_stall
      ~f:(fun x -> x * 3)
  in
  Alcotest.(check (list int)) "all outputs in order"
    (List.map (fun x -> x * 3) (inputs 20))
    r.Pipeline.outputs

let test_skid_identity () =
  let r =
    Pipeline.run_skid ~stages:5 ~skid_depth:6 ~ctrl_delay:0
      ~gate:Pipeline.Gate_empty ~inputs:(inputs 20) ~ready:never_stall
      ~f:(fun x -> x + 100)
  in
  Alcotest.(check (list int)) "all outputs in order"
    (List.map (fun x -> x + 100) (inputs 20))
    r.Pipeline.outputs;
  Alcotest.(check bool) "no overflow" false r.Pipeline.overflow

let test_stall_backpressure_outputs () =
  let ready = ready_pattern 0 3 1 in
  let r =
    Pipeline.run_stall ~stages:4 ~inputs:(inputs 30) ~ready ~f:Fun.id
  in
  Alcotest.(check (list int)) "complete and ordered" (inputs 30) r.Pipeline.outputs

let test_skid_equals_stall_under_backpressure () =
  let ready = ready_pattern 0 5 2 in
  let stall =
    Pipeline.run_stall ~stages:6 ~inputs:(inputs 50) ~ready ~f:Fun.id
  in
  let skid =
    Pipeline.run_skid ~stages:6 ~skid_depth:14 ~ctrl_delay:0
      ~gate:Pipeline.Gate_credit ~inputs:(inputs 50) ~ready ~f:Fun.id
  in
  Alcotest.(check (list int)) "same outputs" stall.Pipeline.outputs
    skid.Pipeline.outputs;
  (* "this approach has the exact same throughput as the original
     stall-based back-pressure control" *)
  Alcotest.(check bool) "comparable cycle count" true
    (abs (stall.Pipeline.cycles - skid.Pipeline.cycles) <= 10)

let test_skid_depth_bound_holds () =
  (* N+1 suffices at ctrl_delay 0: worst-case downstream freeze *)
  let freeze_after k cycle = cycle < k || cycle > k + 40 in
  let r =
    Pipeline.run_skid ~stages:9 ~skid_depth:10 ~ctrl_delay:0
      ~gate:Pipeline.Gate_empty ~inputs:(inputs 60) ~ready:(freeze_after 5)
      ~f:Fun.id
  in
  Alcotest.(check bool) "no overflow at N+1" false r.Pipeline.overflow;
  Alcotest.(check (list int)) "stream intact" (inputs 60) r.Pipeline.outputs

let test_skid_too_shallow_overflows () =
  (* with a buffer smaller than the in-flight data, a long freeze loses
     tokens *)
  let freeze cycle = cycle < 3 || cycle > 60 in
  let r =
    Pipeline.run_skid ~stages:9 ~skid_depth:4 ~ctrl_delay:0
      ~gate:Pipeline.Gate_empty ~inputs:(inputs 60) ~ready:freeze ~f:Fun.id
  in
  Alcotest.(check bool) "overflow" true r.Pipeline.overflow

let test_ctrl_delay_needs_margin () =
  (* registered back-pressure: N+1 is no longer enough, N+1+delay is *)
  let freeze cycle = cycle < 3 || cycle > 80 in
  let tight =
    Pipeline.run_skid ~stages:6 ~skid_depth:7 ~ctrl_delay:4
      ~gate:Pipeline.Gate_empty ~inputs:(inputs 60) ~ready:freeze ~f:Fun.id
  in
  Alcotest.(check bool) "tight buffer overflows" true tight.Pipeline.overflow;
  let padded =
    Pipeline.run_skid ~stages:6 ~skid_depth:11 ~ctrl_delay:4
      ~gate:Pipeline.Gate_empty ~inputs:(inputs 60) ~ready:freeze ~f:Fun.id
  in
  Alcotest.(check bool) "padded buffer safe" false padded.Pipeline.overflow

let test_throughput_full_speed () =
  let r =
    Pipeline.run_skid ~stages:8 ~skid_depth:9 ~ctrl_delay:0
      ~gate:Pipeline.Gate_empty ~inputs:(inputs 100) ~ready:always_ready
      ~f:Fun.id
  in
  Alcotest.(check bool) "near 1 token/cycle" true (Pipeline.throughput r > 0.85)

let test_invalid_args () =
  Alcotest.check_raises "stages" (Invalid_argument "Pipeline.run_stall: stages < 1")
    (fun () ->
      ignore (Pipeline.run_stall ~stages:0 ~inputs:[ 1 ] ~ready:always_ready ~f:Fun.id))

let test_stall_stats_truthful () =
  (* the out-FIFO stats used to be hardcoded to (0, false); a run that
     delivers anything must show a non-empty high-water mark *)
  let r =
    Pipeline.run_stall ~stages:3 ~inputs:(inputs 10)
      ~ready:(ready_pattern 0 3 1) ~f:Fun.id
  in
  Alcotest.(check bool) "max_occupancy >= 1" true (r.Pipeline.max_occupancy >= 1);
  Alcotest.(check bool) "no overflow" false r.Pipeline.overflow

let test_underprovisioned_credit_rejected () =
  (* a credit gate below Skid.required_depth computes a negative open
     threshold: the gate would never open and tokens would silently
     vanish. It must be rejected up front as a structured diagnostic. *)
  let required =
    Hlsb_ctrl.Skid.required_depth ~pipeline_depth:6 ~ctrl_stages:2 ()
  in
  (match
     Pipeline.run_skid ~stages:6 ~skid_depth:(required - 1) ~ctrl_delay:2
       ~gate:Pipeline.Gate_credit ~inputs:(inputs 10) ~ready:always_ready
       ~f:Fun.id
   with
  | _ -> Alcotest.fail "under-provisioned Gate_credit accepted"
  | exception Hlsb_util.Diag.Diagnostic d ->
    Alcotest.(check string) "sim stage" "sim" d.Hlsb_util.Diag.d_stage);
  (* the same shallow depth stays legal under Gate_empty: overflow is an
     observable result there, and the sizing experiments rely on it *)
  let r =
    Pipeline.run_skid ~stages:6 ~skid_depth:(required - 1) ~ctrl_delay:2
      ~gate:Pipeline.Gate_empty ~inputs:(inputs 10) ~ready:always_ready
      ~f:Fun.id
  in
  Alcotest.(check (list int)) "gate_empty still runs" (inputs 10)
    r.Pipeline.outputs

(* the paper's central §4.3 equivalence, adversarially *)
let prop_skid_equals_stall =
  QCheck.Test.make ~count:120
    ~name:"skid control == stall control (outputs and throughput)"
    QCheck.(triple small_nat (int_range 1 12) (int_range 0 3))
    (fun (seed, stages, ctrl_delay) ->
      let rng = Rng.create seed in
      let n = 20 + Rng.int rng 40 in
      (* random downstream readiness, deterministic per seed *)
      let pattern = Array.init 4096 (fun _ -> Rng.int rng 4 > 0) in
      let ready c = pattern.(c mod 4096) in
      let stall =
        Pipeline.run_stall ~stages ~inputs:(inputs n) ~ready ~f:(fun x -> x * 7)
      in
      let skid =
        Pipeline.run_skid ~stages
          ~skid_depth:(2 * (stages + 1 + ctrl_delay))
          ~ctrl_delay ~gate:Pipeline.Gate_credit ~inputs:(inputs n) ~ready
          ~f:(fun x -> x * 7)
      in
      stall.Pipeline.outputs = skid.Pipeline.outputs
      && (not skid.Pipeline.overflow)
      && abs (stall.Pipeline.cycles - skid.Pipeline.cycles)
         <= (2 * (stages + ctrl_delay)) + 6)

(* same equivalence at exactly the paper's bound: Gate_empty at
   required_depth = N + 1 + ctrl_delay delivers the stall stream with no
   overflow — no extra slack needed *)
let prop_skid_equals_stall_at_required_depth =
  QCheck.Test.make ~count:120
    ~name:"skid at exactly Skid.required_depth matches stall deliveries"
    QCheck.(triple small_nat (int_range 1 12) (int_range 0 3))
    (fun (seed, stages, ctrl_delay) ->
      let rng = Rng.create seed in
      let n = 10 + Rng.int rng 30 in
      let pattern = Array.init 4096 (fun _ -> Rng.int rng 4 > 0) in
      let ready c = pattern.(c mod 4096) in
      let depth =
        Hlsb_ctrl.Skid.required_depth ~pipeline_depth:stages
          ~ctrl_stages:ctrl_delay ()
      in
      let stall =
        Pipeline.run_stall ~stages ~inputs:(inputs n) ~ready ~f:(fun x -> x + 9)
      in
      let skid =
        Pipeline.run_skid ~stages ~skid_depth:depth ~ctrl_delay
          ~gate:Pipeline.Gate_empty ~inputs:(inputs n) ~ready ~f:(fun x -> x + 9)
      in
      stall.Pipeline.outputs = skid.Pipeline.outputs
      && (not skid.Pipeline.overflow)
      && stall.Pipeline.max_occupancy >= 1)

let prop_skid_occupancy_bounded =
  QCheck.Test.make ~count:120 ~name:"skid occupancy never exceeds N+1+delay"
    QCheck.(triple small_nat (int_range 1 10) (int_range 0 3))
    (fun (seed, stages, ctrl_delay) ->
      let rng = Rng.create seed in
      let pattern = Array.init 4096 (fun _ -> Rng.bool rng) in
      let ready c = pattern.(c mod 4096) in
      let depth = stages + 1 + ctrl_delay in
      let r =
        Pipeline.run_skid ~stages ~skid_depth:depth ~ctrl_delay
          ~gate:Pipeline.Gate_empty ~inputs:(inputs 50) ~ready ~f:Fun.id
      in
      (not r.Pipeline.overflow) && r.Pipeline.max_occupancy <= depth)

(* ---- Network / sync ---- *)

let two_flows () =
  let df = Dataflow.create () in
  let a = Dataflow.add_process df ~name:"a" () in
  let b = Dataflow.add_process df ~name:"b" () in
  ignore (Dataflow.add_channel df ~name:"ia" ~src:(-1) ~dst:a ~dtype:(Dtype.Int 8) ());
  ignore (Dataflow.add_channel df ~name:"ib" ~src:(-1) ~dst:b ~dtype:(Dtype.Int 8) ());
  let oa = Dataflow.add_channel df ~name:"oa" ~src:a ~dst:(-1) ~dtype:(Dtype.Int 8) () in
  let ob = Dataflow.add_channel df ~name:"ob" ~src:b ~dst:(-1) ~dtype:(Dtype.Int 8) () in
  Dataflow.add_sync_group df [ a; b ];
  (df, oa, ob)

let test_network_runs () =
  let df, oa, ob = two_flows () in
  let r = Network.run df ~tokens:10 ~ready:(fun ~chan:_ ~cycle:_ -> true) in
  Alcotest.(check bool) "completed" true (r.Network.status = Network.Completed);
  Alcotest.(check (list int)) "flow a stream" (List.init 10 Fun.id)
    (List.assoc oa r.Network.delivered);
  Alcotest.(check (list int)) "flow b stream" (List.init 10 Fun.id)
    (List.assoc ob r.Network.delivered)

let test_barrier_couples_flows () =
  (* back-pressure on flow b slows flow a under the glued sync, but not
     when the groups are pruned *)
  let slow_b ~chan ~cycle =
    let _, _, ob = ((), (), 3) in
    ignore ob;
    if chan = 3 then cycle mod 4 = 0 else true
  in
  let df, _, _ = two_flows () in
  let glued = Network.run df ~tokens:20 ~ready:slow_b in
  let pruned_df = Hlsb_ctrl.Sync.split_independent df in
  let pruned = Network.run pruned_df ~tokens:20 ~ready:slow_b in
  Alcotest.(check bool) "pruned at least as fast" true
    (pruned.Network.cycles <= glued.Network.cycles);
  (* flow a alone is strictly faster when decoupled *)
  Alcotest.(check bool) "a decoupled from b" true
    (pruned.Network.fired.(0) >= glued.Network.fired.(0))

let test_pruning_preserves_streams () =
  let df, oa, ob = two_flows () in
  let ready ~chan ~cycle = (chan + cycle) mod 3 <> 0 in
  let glued = Network.run df ~tokens:15 ~ready in
  let pruned = Network.run (Hlsb_ctrl.Sync.split_independent df) ~tokens:15 ~ready in
  List.iter
    (fun c ->
      Alcotest.(check (list int))
        (Printf.sprintf "stream %d identical" c)
        (List.assoc c glued.Network.delivered)
        (List.assoc c pruned.Network.delivered))
    [ oa; ob ]

let test_network_deadlock_guard () =
  (* a consumer with no input tokens ever: the run terminates with the
     deadlock flag rather than hanging *)
  let df = Dataflow.create () in
  let a = Dataflow.add_process df ~name:"a" () in
  let b = Dataflow.add_process df ~name:"b" () in
  (* a -> b but also b -> a: a circular wait with empty channels *)
  ignore (Dataflow.add_channel df ~name:"ab" ~src:a ~dst:b ~dtype:(Dtype.Int 8) ());
  ignore (Dataflow.add_channel df ~name:"ba" ~src:b ~dst:a ~dtype:(Dtype.Int 8) ());
  ignore (Dataflow.add_channel df ~name:"o" ~src:b ~dst:(-1) ~dtype:(Dtype.Int 8) ());
  let r = Network.run df ~tokens:5 ~ready:(fun ~chan:_ ~cycle:_ -> true) in
  Alcotest.(check bool) "deadlock detected" true
    (r.Network.status = Network.Deadlocked);
  (* a true deadlock is recognized as soon as the network freezes, not
     after grinding out the whole cycle budget *)
  Alcotest.(check bool) "detected promptly" true (r.Network.cycles < 100)

let test_limit_is_not_deadlock () =
  (* a sink that drains only once every 200 cycles makes progress far too
     slowly for the cycle budget (tokens*50 + 1000), but it IS making
     progress: the run must end Limit_exceeded, never Deadlocked *)
  let df, _, _ = two_flows () in
  let ready ~chan:_ ~cycle = cycle mod 200 = 0 in
  let r = Network.run df ~tokens:20 ~ready in
  Alcotest.(check bool) "limit exceeded" true
    (r.Network.status = Network.Limit_exceeded);
  Alcotest.(check bool) "some tokens were delivered" true
    (List.exists (fun (_, s) -> s <> []) r.Network.delivered)

let test_network_conservation_counters () =
  let df, oa, ob = two_flows () in
  let ready ~chan ~cycle = (chan + cycle) mod 3 <> 0 in
  let r = Network.run df ~tokens:12 ~ready in
  Alcotest.(check bool) "completed" true (r.Network.status = Network.Completed);
  List.iteri
    (fun ch _ ->
      Alcotest.(check int)
        (Printf.sprintf "channel %d: produced - consumed = occupancy" ch)
        r.Network.occupancy.(ch)
        (r.Network.produced.(ch) - r.Network.consumed.(ch)))
    (Array.to_list r.Network.occupancy);
  (* a completed run leaves nothing in flight *)
  List.iter
    (fun c -> Alcotest.(check int) "drained" 0 r.Network.occupancy.(c))
    [ oa; ob ]

let test_network_rejects_degenerate_runs () =
  let diag_raised f =
    match f () with
    | _ -> false
    | exception Hlsb_util.Diag.Diagnostic d -> d.Hlsb_util.Diag.d_stage = "sim"
  in
  let df, _, _ = two_flows () in
  Alcotest.(check bool) "tokens < 1 rejected" true
    (diag_raised (fun () ->
       Network.run df ~tokens:0 ~ready:(fun ~chan:_ ~cycle:_ -> true)));
  (* no external output channel: nothing observable, instant vacuous pass *)
  let open Hlsb_ir in
  let blind = Dataflow.create () in
  let p = Dataflow.add_process blind ~name:"p" () in
  ignore
    (Dataflow.add_channel blind ~name:"i" ~src:(-1) ~dst:p
       ~dtype:(Dtype.Int 8) ());
  Alcotest.(check bool) "no-ext-output rejected" true
    (diag_raised (fun () ->
       Network.run blind ~tokens:3 ~ready:(fun ~chan:_ ~cycle:_ -> true)))

let test_long_freeze_resumes () =
  (* Network.run keeps idle processes off a worklist between occupancy
     changes; a long downstream freeze followed by a resume is the
     adversarial case — a lost wakeup would surface here as a deadlock flag
     or a truncated stream. *)
  let df, oa, ob = two_flows () in
  let ready ~chan:_ ~cycle = cycle < 5 || cycle > 150 in
  let r = Network.run df ~tokens:25 ~ready in
  Alcotest.(check bool) "completes after the freeze" true
    (r.Network.status = Network.Completed);
  List.iter
    (fun c ->
      Alcotest.(check (list int))
        (Printf.sprintf "stream %d intact" c)
        (List.init 25 Fun.id)
        (List.assoc c r.Network.delivered))
    [ oa; ob ]

let prop_sparse_readiness_completes =
  QCheck.Test.make ~count:60
    ~name:"network completes under sparse bursty readiness"
    QCheck.small_nat
    (fun seed ->
      let rng = Rng.create seed in
      let df, oa, ob = two_flows () in
      (* mostly-stalled sinks: long inactive stretches exercise the
         deactivation/reactivation path on every channel *)
      let pattern = Array.init 512 (fun _ -> Rng.int rng 8 = 0) in
      let ready ~chan ~cycle = pattern.(((chan * 7) + cycle) mod 512) in
      let r = Network.run df ~tokens:8 ~ready in
      r.Network.status = Network.Completed
      && List.assoc oa r.Network.delivered = List.init 8 Fun.id
      && List.assoc ob r.Network.delivered = List.init 8 Fun.id)

let prop_pruning_stream_equivalence =
  QCheck.Test.make ~count:80
    ~name:"sync pruning is stream-preserving on random two-flow networks"
    QCheck.small_nat
    (fun seed ->
      let rng = Rng.create seed in
      let df, oa, ob = two_flows () in
      let pattern = Array.init 512 (fun _ -> Rng.int rng 3 > 0) in
      let ready ~chan ~cycle = pattern.((chan + cycle) mod 512) in
      let glued = Network.run df ~tokens:12 ~ready in
      let pruned =
        Network.run (Hlsb_ctrl.Sync.split_independent df) ~tokens:12 ~ready
      in
      List.assoc oa glued.Network.delivered = List.assoc oa pruned.Network.delivered
      && List.assoc ob glued.Network.delivered = List.assoc ob pruned.Network.delivered
      && pruned.Network.cycles <= glued.Network.cycles)

let suite =
  [
    Alcotest.test_case "fifo order" `Quick test_fifo_order;
    Alcotest.test_case "fifo overflow flag" `Quick test_fifo_overflow_flag;
    Alcotest.test_case "fifo high water" `Quick test_fifo_high_water;
    Alcotest.test_case "stall identity" `Quick test_stall_identity;
    Alcotest.test_case "skid identity" `Quick test_skid_identity;
    Alcotest.test_case "stall backpressure" `Quick test_stall_backpressure_outputs;
    Alcotest.test_case "skid == stall (fixed)" `Quick
      test_skid_equals_stall_under_backpressure;
    Alcotest.test_case "skid N+1 bound" `Quick test_skid_depth_bound_holds;
    Alcotest.test_case "shallow skid overflows" `Quick test_skid_too_shallow_overflows;
    Alcotest.test_case "ctrl delay needs margin" `Quick test_ctrl_delay_needs_margin;
    Alcotest.test_case "full-speed throughput" `Quick test_throughput_full_speed;
    Alcotest.test_case "invalid args" `Quick test_invalid_args;
    Alcotest.test_case "stall stats truthful" `Quick test_stall_stats_truthful;
    Alcotest.test_case "under-provisioned credit rejected" `Quick
      test_underprovisioned_credit_rejected;
    Alcotest.test_case "network runs" `Quick test_network_runs;
    Alcotest.test_case "barrier couples flows" `Quick test_barrier_couples_flows;
    Alcotest.test_case "pruning preserves streams" `Quick
      test_pruning_preserves_streams;
    Alcotest.test_case "deadlock guard" `Quick test_network_deadlock_guard;
    Alcotest.test_case "limit is not deadlock" `Quick test_limit_is_not_deadlock;
    Alcotest.test_case "conservation counters" `Quick
      test_network_conservation_counters;
    Alcotest.test_case "degenerate runs rejected" `Quick
      test_network_rejects_degenerate_runs;
    Alcotest.test_case "long freeze resumes" `Quick test_long_freeze_resumes;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_skid_equals_stall;
        prop_skid_equals_stall_at_required_depth;
        prop_skid_occupancy_bounded;
        prop_pruning_stream_equivalence;
        prop_sparse_readiness_completes;
      ]
