(* Delay library tests: the Fig. 9 properties of the HLS prediction, the
   skeleton characterization, and the calibration rule. *)

open Hlsb_ir
module Oplib = Hlsb_delay.Oplib
module Characterize = Hlsb_delay.Characterize
module Calibrate = Hlsb_delay.Calibrate
module Cal_cache = Hlsb_delay.Cal_cache
module Device = Hlsb_device.Device
module Metrics = Hlsb_telemetry.Metrics
module Json = Hlsb_telemetry.Json
module Pool = Hlsb_util.Pool

let dev = Device.ultrascale_plus
let i32 = Dtype.Int 32

let test_predicted_fanout_blind () =
  (* the defining limitation of the HLS model (section 2): the same number
     no matter the environment — it does not even take a fanout argument,
     and must be strictly positive for datapath ops *)
  List.iter
    (fun op ->
      Alcotest.(check bool)
        (Op.to_string op ^ " positive")
        true
        (Oplib.predicted op i32 > 0.))
    [ Op.Add; Op.Mul; Op.Icmp Op.Lt; Op.Select; Op.Log2 ]

let test_predicted_magnitudes () =
  (* the paper quotes sub at 0.78 ns on UltraScale+ *)
  let sub = Oplib.predicted Op.Sub i32 in
  Alcotest.(check bool) "sub ~ 0.78ns" true (sub > 0.6 && sub < 0.95);
  (* wider adders are slower *)
  Alcotest.(check bool) "width matters" true
    (Oplib.predicted Op.Add (Dtype.Int 64) > Oplib.predicted Op.Add (Dtype.Int 8))

let test_float_conservative () =
  (* Fig. 9: the vendor model is deliberately conservative for fmul: the
     prediction exceeds the measured delay at small factors *)
  let pred = Oplib.predicted Op.Fmul Dtype.Float32 in
  let measured = Characterize.arith dev Op.Fmul Dtype.Float32 ~factor:1 in
  Alcotest.(check bool) "prediction above reality" true (pred > measured)

let test_int_prediction_matches_small_factor () =
  (* Fig. 9: "the delay values obtained by our experiments perfectly match
     with the Vivado-HLS-predicted values when the broadcast factor is
     small" *)
  let pred = Oplib.predicted Op.Add i32 in
  let measured = Characterize.arith dev Op.Add i32 ~factor:1 in
  Alcotest.(check bool) "within 20%" true
    (abs_float (measured -. pred) /. pred < 0.2)

let test_measured_grows_with_factor () =
  let m1 = Characterize.arith dev Op.Add i32 ~factor:1 in
  let m64 = Characterize.arith dev Op.Add i32 ~factor:64 in
  let m512 = Characterize.arith dev Op.Add i32 ~factor:512 in
  Alcotest.(check bool) "64 > 1" true (m64 > m1 *. 1.3);
  Alcotest.(check bool) "512 > 64" true (m512 > m64)

let test_latency_cycles () =
  Alcotest.(check int) "add comb" 0 (Oplib.latency_cycles Op.Add i32);
  Alcotest.(check bool) "fadd pipelined" true
    (Oplib.latency_cycles Op.Fadd Dtype.Float32 >= 3);
  Alcotest.(check bool) "f64 deeper" true
    (Oplib.latency_cycles Op.Fadd Dtype.Float64
    > Oplib.latency_cycles Op.Fadd Dtype.Float32)

let test_stage_delay_divides () =
  let full = Oplib.logic_delay dev Op.Fmul Dtype.Float32 in
  let stage = Oplib.stage_delay dev Op.Fmul Dtype.Float32 in
  let lat = Oplib.latency_cycles Op.Fmul Dtype.Float32 in
  Alcotest.(check (float 1e-9)) "stage = full / (lat+1)"
    (full /. float_of_int (lat + 1))
    stage

let test_mem_measured_grows_with_units () =
  let m1 = Characterize.mem_write dev ~units:1 in
  let m256 = Characterize.mem_write dev ~units:256 in
  Alcotest.(check bool) "grows" true (m256 > m1 *. 2.)

let test_mem_read_grows () =
  let r1 = Characterize.mem_read dev ~units:1 in
  let r256 = Characterize.mem_read dev ~units:256 in
  Alcotest.(check bool) "grows" true (r256 > r1)

let test_calibrated_at_least_predicted () =
  let cal = Calibrate.create dev in
  List.iter
    (fun factor ->
      let c = Calibrate.op_delay cal Op.Add i32 ~factor in
      Alcotest.(check bool)
        (Printf.sprintf "factor %d" factor)
        true
        (c >= Oplib.predicted Op.Add i32 -. 1e-9))
    [ 1; 3; 17; 100; 512; 2000 ]

let test_calibrated_monotone_smoothed () =
  let cal = Calibrate.create dev in
  let big = Calibrate.op_delay cal Op.Add i32 ~factor:512 in
  let small = Calibrate.op_delay cal Op.Add i32 ~factor:1 in
  Alcotest.(check bool) "more broadcast, more delay" true (big > small)

let test_calibrated_interpolation () =
  (* a factor between grid points must land between the grid values *)
  let cal = Calibrate.create dev in
  let f32v = Calibrate.op_delay cal Op.Add i32 ~factor:32 in
  let f64v = Calibrate.op_delay cal Op.Add i32 ~factor:64 in
  let f48 = Calibrate.op_delay cal Op.Add i32 ~factor:48 in
  let lo = min f32v f64v -. 1e-9 and hi = max f32v f64v +. 1e-9 in
  Alcotest.(check bool) "between neighbours" true (f48 >= lo && f48 <= hi)

let test_calibrated_clamps () =
  let cal = Calibrate.create dev in
  let at_max = Calibrate.op_delay cal Op.Add i32 ~factor:512 in
  let beyond = Calibrate.op_delay cal Op.Add i32 ~factor:100000 in
  Alcotest.(check (float 1e-9)) "clamped beyond grid" at_max beyond

let test_mem_calibrated_floor () =
  let cal = Calibrate.create dev in
  let tiny = Calibrate.mem_write_delay cal ~width:8 ~depth:16 in
  Alcotest.(check bool) "floor is the HLS prediction" true
    (tiny >= Oplib.mem_write_predicted -. 1e-9)

let test_mem_calibrated_grows () =
  let cal = Calibrate.create dev in
  let small = Calibrate.mem_write_delay cal ~width:32 ~depth:1024 in
  let big = Calibrate.mem_write_delay cal ~width:512 ~depth:131072 in
  Alcotest.(check bool) "big buffer slower" true (big > small)

let test_curve_rows_shape () =
  let cal = Calibrate.create dev in
  let rows = Calibrate.op_curve cal Op.Add i32 in
  Alcotest.(check int) "one row per grid point"
    (Array.length Calibrate.factor_grid)
    (List.length rows);
  List.iter
    (fun (r : Calibrate.curve_row) ->
      Alcotest.(check bool) "calibrated >= predicted" true
        (r.Calibrate.cr_calibrated >= r.Calibrate.cr_predicted -. 1e-9))
    rows

let test_shared_cache () =
  let a = Calibrate.shared dev in
  let b = Calibrate.shared dev in
  Alcotest.(check bool) "same instance" true (a == b)

let test_invalid_factor () =
  let cal = Calibrate.create dev in
  Alcotest.check_raises "factor 0"
    (Invalid_argument "Calibrate.op_delay: factor < 1") (fun () ->
      ignore (Calibrate.op_delay cal Op.Add i32 ~factor:0))

let test_device_scaling () =
  (* the same op is slower on the older, slower fabric *)
  let us = Oplib.logic_delay Device.ultrascale_plus Op.Add i32 in
  let z = Oplib.logic_delay Device.zynq_7z045 Op.Add i32 in
  Alcotest.(check bool) "zynq slower" true (z > us)

(* ---- Persistent calibration cache ---- *)

let with_temp_dir f =
  let base = Filename.temp_file "hlsb-cal" "" in
  Sys.remove base;
  Sys.mkdir base 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun fn -> try Sys.remove (Filename.concat base fn) with Sys_error _ -> ())
        (try Sys.readdir base with Sys_error _ -> [||]);
      try Sys.rmdir base with Sys_error _ -> ())
    (fun () -> f base)

let test_cache_round_trip () =
  with_temp_dir (fun dir ->
      let cold = Calibrate.create ~cache_dir:dir dev in
      let curve_cold = Calibrate.op_curve cold Op.Add i32 in
      let mem_cold = Calibrate.mem_write_delay cold ~width:512 ~depth:131072 in
      (* a fresh calibrator over the same directory must reload identical
         curves without a single rebuild *)
      let reg = Metrics.create () in
      let warm = Calibrate.create ~cache_dir:dir dev in
      let curve_warm, mem_warm =
        Metrics.with_registry reg (fun () ->
            ( Calibrate.op_curve warm Op.Add i32,
              Calibrate.mem_write_delay warm ~width:512 ~depth:131072 ))
      in
      Alcotest.(check bool) "op curve bit-identical" true (curve_cold = curve_warm);
      Alcotest.(check (float 0.)) "mem delay bit-identical" mem_cold mem_warm;
      Alcotest.(check int) "no rebuild on warm load" 0
        (Metrics.counter_value reg "calibrate.curve_builds");
      Alcotest.(check bool) "cache hits recorded" true
        (Metrics.counter_value reg "calibrate.cache_hits" >= 2))

let test_cache_fingerprint_invalidation () =
  with_temp_dir (fun dir ->
      let c = Calibrate.create ~cache_dir:dir dev in
      ignore (Calibrate.op_curve c Op.Add i32);
      (* same device name, different timing numbers: stale *)
      let retimed = { dev with Device.t_lut = dev.Device.t_lut *. 2. } in
      Alcotest.(check bool) "retimed device misses" true
        (Cal_cache.load ~dir ~factor_grid:Calibrate.factor_grid
           ~unit_grid:Calibrate.unit_grid retimed
        = None);
      Alcotest.(check bool) "original device still hits" true
        (Cal_cache.load ~dir ~factor_grid:Calibrate.factor_grid
           ~unit_grid:Calibrate.unit_grid dev
        <> None))

let test_cache_schema_invalidation () =
  with_temp_dir (fun dir ->
      let c = Calibrate.create ~cache_dir:dir dev in
      ignore (Calibrate.op_curve c Op.Add i32);
      let path = Cal_cache.file_path ~dir dev in
      let text =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let bumped =
        match Json.of_string text with
        | Ok (Json.Obj fields) ->
          Json.Obj
            (List.map
               (fun (k, v) -> if k = "schema" then (k, Json.Int 999) else (k, v))
               fields)
        | _ -> Alcotest.fail "cache file should parse as an object"
      in
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Json.to_string bumped));
      Alcotest.(check bool) "future schema misses" true
        (Cal_cache.load ~dir ~factor_grid:Calibrate.factor_grid
           ~unit_grid:Calibrate.unit_grid dev
        = None);
      match Cal_cache.summarize ~factor_grid:Calibrate.factor_grid
              ~unit_grid:Calibrate.unit_grid path
      with
      | None -> Alcotest.fail "summarize should still parse the file"
      | Some s ->
        Alcotest.(check bool) "flagged stale" false s.Cal_cache.s_valid;
        Alcotest.(check int) "schema surfaced" 999 s.Cal_cache.s_schema)

let test_cache_grid_invalidation () =
  with_temp_dir (fun dir ->
      Cal_cache.store ~dir ~factor_grid:[| 1; 2 |] ~unit_grid:[| 1 |] dev
        { Cal_cache.empty with Cal_cache.e_ops = [ ("add/i32", [| 1.; 2. |]) ] };
      Alcotest.(check bool) "different grid misses" true
        (Cal_cache.load ~dir ~factor_grid:Calibrate.factor_grid
           ~unit_grid:Calibrate.unit_grid dev
        = None))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_cache_bytes_order_independent () =
  (* The cache file serializes op curves in sorted key order, so its exact
     bytes are independent of the order — and the number of domains — the
     curves were built with. Warm one directory sequentially and another
     with the ops reversed and fanned out across a real multi-domain pool,
     and require identical files. *)
  let ops = [ (Op.Add, i32); (Op.Sub, i32); (Op.Mul, i32) ] in
  let warm_in dir order ~jobs =
    let cal = Calibrate.create ~cache_dir:dir dev in
    Pool.iter ~jobs
      (fun (op, dt) -> ignore (Calibrate.op_delay cal op dt ~factor:4))
      (Array.of_list order);
    read_file (Cal_cache.file_path ~dir dev)
  in
  with_temp_dir (fun d1 ->
      with_temp_dir (fun d2 ->
          let seq = warm_in d1 ops ~jobs:1 in
          let par = warm_in d2 (List.rev ops) ~jobs:4 in
          Alcotest.(check string) "cache files byte-identical" seq par))

let test_jobs_deterministic () =
  (* the acceptance bar: curves bit-identical at any job count *)
  let seq = Characterize.arith_curve ~jobs:1 dev Op.Add i32 ~factors:Calibrate.factor_grid in
  let par = Characterize.arith_curve ~jobs:4 dev Op.Add i32 ~factors:Calibrate.factor_grid in
  Alcotest.(check bool) "arith curve bit-identical" true (seq = par);
  let mseq = Characterize.mem_write_curve ~jobs:1 dev ~units:Calibrate.unit_grid in
  let mpar = Characterize.mem_write_curve ~jobs:4 dev ~units:Calibrate.unit_grid in
  Alcotest.(check bool) "mem curve bit-identical" true (mseq = mpar)

let suite =
  [
    Alcotest.test_case "prediction fanout-blind" `Quick test_predicted_fanout_blind;
    Alcotest.test_case "prediction magnitudes" `Quick test_predicted_magnitudes;
    Alcotest.test_case "float conservative" `Quick test_float_conservative;
    Alcotest.test_case "int matches at small factor" `Quick
      test_int_prediction_matches_small_factor;
    Alcotest.test_case "measured grows with factor" `Quick
      test_measured_grows_with_factor;
    Alcotest.test_case "latency cycles" `Quick test_latency_cycles;
    Alcotest.test_case "stage delay divides" `Quick test_stage_delay_divides;
    Alcotest.test_case "mem write grows" `Quick test_mem_measured_grows_with_units;
    Alcotest.test_case "mem read grows" `Quick test_mem_read_grows;
    Alcotest.test_case "calibrated >= predicted" `Quick
      test_calibrated_at_least_predicted;
    Alcotest.test_case "calibrated monotone" `Quick test_calibrated_monotone_smoothed;
    Alcotest.test_case "calibrated interpolates" `Quick test_calibrated_interpolation;
    Alcotest.test_case "calibrated clamps" `Quick test_calibrated_clamps;
    Alcotest.test_case "mem floor" `Quick test_mem_calibrated_floor;
    Alcotest.test_case "mem grows" `Quick test_mem_calibrated_grows;
    Alcotest.test_case "curve rows" `Quick test_curve_rows_shape;
    Alcotest.test_case "shared cache" `Quick test_shared_cache;
    Alcotest.test_case "invalid factor" `Quick test_invalid_factor;
    Alcotest.test_case "device scaling" `Quick test_device_scaling;
    Alcotest.test_case "cache round trip" `Quick test_cache_round_trip;
    Alcotest.test_case "cache fingerprint invalidation" `Quick
      test_cache_fingerprint_invalidation;
    Alcotest.test_case "cache schema invalidation" `Quick
      test_cache_schema_invalidation;
    Alcotest.test_case "cache grid invalidation" `Quick test_cache_grid_invalidation;
    Alcotest.test_case "jobs deterministic" `Quick test_jobs_deterministic;
    Alcotest.test_case "cache bytes order-independent" `Quick
      test_cache_bytes_order_independent;
  ]
