(* Transform-layer tests: golden rewrites for every pass, plan-grammar
   round-trips, printer round-trips, semantic equivalence of transformed
   programs under the Exec reference evaluator, per-plan pipeline
   stage caching, and channel-reuse idempotence. *)

open Hlsb_ir
module Ast = Hlsb_frontend.Ast
module Frontend = Hlsb_frontend.Frontend
module Pass = Hlsb_transform.Pass
module Plan = Hlsb_transform.Plan
module Reuse = Hlsb_transform.Reuse
module Pipeline = Core.Pipeline
module Style = Hlsb_ctrl.Style
module Device = Hlsb_device.Device
module Gen = Hlsb_fuzz.Gen
module Oracle = Hlsb_fuzz.Oracle
module Exec = Hlsb_fuzz.Exec
module Rng = Hlsb_util.Rng
module Diag = Hlsb_util.Diag
module Metrics = Hlsb_telemetry.Metrics

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%a" Frontend.pp_error e

let parse src = ok (Frontend.parse src)

let apply plan_s program =
  match Plan.of_string plan_s with
  | Error m -> Alcotest.failf "plan %S does not parse: %s" plan_s m
  | Ok plan -> (
    match Plan.apply_source plan program with
    | Ok p -> p
    | Error d ->
      Alcotest.failf "plan %S inapplicable: %s" plan_s (Diag.to_string d))

(* Golden comparison through the printer: both sides rendered by
   [Ast.to_source], so the check pins structure without depending on the
   incoming text's whitespace. *)
let check_golden name ~expected actual =
  Alcotest.(check string) name (Ast.to_source (parse expected)) (Ast.to_source actual)

(* ---- golden rewrites ---- *)

let src_loop =
  "void f(stream<int> &a, stream<int> &b) {\n\
  \  for (int i = 0; i < 4; i++) {\n\
  \    b.write(a.read() + i);\n\
  \  }\n\
   }\n"

let test_unroll_full () =
  check_golden "unroll=4 replicates the body"
    ~expected:
      "void f(stream<int> &a, stream<int> &b) {\n\
      \  b.write(a.read() + 0);\n\
      \  b.write(a.read() + 1);\n\
      \  b.write(a.read() + 2);\n\
      \  b.write(a.read() + 3);\n\
       }\n"
    (apply "unroll=4" (parse src_loop))

let test_unroll_partial () =
  check_golden "unroll=2 leaves a residual loop"
    ~expected:
      "void f(stream<int> &a, stream<int> &b) {\n\
      \  for (int i = 0; i < 2; i++) {\n\
      \    b.write(a.read() + (i * 2 + 0));\n\
      \    b.write(a.read() + (i * 2 + 1));\n\
      \  }\n\
       }\n"
    (apply "unroll=i:2" (parse src_loop))

let src_fissionable =
  "void f(stream<int> &a, stream<int> &b, stream<int> &c, stream<int> &d) {\n\
  \  for (int i = 0; i < 8; i++) {\n\
  \    b.write(a.read() + 1);\n\
  \    d.write(c.read() * 2);\n\
  \  }\n\
   }\n"

let src_fissioned =
  "void f(stream<int> &a, stream<int> &b, stream<int> &c, stream<int> &d) {\n\
  \  for (int i = 0; i < 8; i++) {\n\
  \    b.write(a.read() + 1);\n\
  \  }\n\
  \  for (int i = 0; i < 8; i++) {\n\
  \    d.write(c.read() * 2);\n\
  \  }\n\
   }\n"

let test_fission () =
  check_golden "fission splits stream-disjoint statements"
    ~expected:src_fissioned
    (apply "fission" (parse src_fissionable))

let test_fusion () =
  check_golden "fusion merges twin-header independent loops"
    ~expected:src_fissionable
    (apply "fusion=i" (parse src_fissioned))

let test_fusion_fission_inverse () =
  let p = parse src_fissionable in
  check_golden "fusion . fission = identity"
    ~expected:src_fissionable
    (apply "fission;fusion" p)

let test_stream_insert () =
  let p =
    parse
      "void pc(stream<int> &a, stream<int> &b) {\n\
      \  int t[16];\n\
      \  for (int i = 0; i < 16; i++) {\n\
      \    t[i] = a.read() * 3;\n\
      \  }\n\
      \  for (int j = 0; j < 16; j++) {\n\
      \    b.write(t[j] + 1);\n\
      \  }\n\
       }\n"
  in
  check_golden "stream=t turns the array into a FIFO"
    ~expected:
      "void pc(stream<int> &a, stream<int> &b) {\n\
      \  stream<int> t;\n\
      \  for (int i = 0; i < 16; i++) {\n\
      \    t.write(a.read() * 3);\n\
      \  }\n\
      \  for (int j = 0; j < 16; j++) {\n\
      \    b.write(t.read() + 1);\n\
      \  }\n\
       }\n"
    (apply "stream=t" p)

let src_big_array =
  "void f(stream<int> &a, stream<int> &b) {\n\
  \  int t[256];\n\
  \  for (int i = 0; i < 256; i++) {\n\
  \    t[i] = a.read();\n\
  \  }\n\
  \  for (int j = 0; j < 256; j++) {\n\
  \    b.write(t[j]);\n\
  \  }\n\
   }\n"

let test_partition_reaches_buffer () =
  let p' = apply "partition=cyclic:t:4" (parse src_big_array) in
  let has_pragma =
    List.exists
      (fun f ->
        List.exists
          (function
            | Ast.Pragma_stmt s ->
              s = "HLS array_partition variable=t cyclic factor=4"
            | _ -> false)
          f.Ast.f_body)
      p'
  in
  Alcotest.(check bool) "partition pragma inserted" true has_pragma;
  let k = ok (Frontend.kernel_of_program p') in
  let banked =
    Array.exists
      (fun (b : Dag.buffer) -> b.Dag.b_name = "t" && b.Dag.b_partition = 4)
      (Dag.buffers k.Kernel.dag)
  in
  Alcotest.(check bool) "elaborated buffer carries partition 4" true banked

let test_inapplicable_is_structured () =
  List.iter
    (fun plan_s ->
      let plan =
        match Plan.of_string plan_s with
        | Ok p -> p
        | Error m -> Alcotest.failf "plan %S does not parse: %s" plan_s m
      in
      match Plan.apply_source plan (parse src_loop) with
      | Ok _ -> Alcotest.failf "plan %S unexpectedly applied" plan_s
      | Error d ->
        Alcotest.(check string)
          (plan_s ^ " rejects at the transform stage")
          "transform" d.Diag.d_stage)
    [ "unroll=k:2"; "unroll=3"; "fission"; "fusion"; "stream"; "partition=cyclic:2" ]

(* ---- plan grammar ---- *)

let test_plan_roundtrip () =
  List.iter
    (fun s ->
      match Plan.of_string s with
      | Error m -> Alcotest.failf "plan %S rejected: %s" s m
      | Ok p -> Alcotest.(check string) ("canonical: " ^ s) s (Plan.to_string p))
    [
      "";
      "unroll=4";
      "unroll=i:2;partition=cyclic:t:4;fission";
      "stream=t;pragmas;channel-reuse";
      "fusion=j;fission=i";
    ];
  List.iter
    (fun s ->
      match Plan.of_string s with
      | Ok _ -> Alcotest.failf "plan %S unexpectedly parsed" s
      | Error _ -> ())
    [ "unroll"; "unroll=i:"; "partition=block:2"; "bogus"; "stream=;fission" ]

let test_pragma_requests_and_warnings () =
  let p =
    parse
      "void f(stream<int> &a, stream<int> &b) {\n\
       #pragma HLS mystery_knob on\n\
      \  for (int i = 0; i < 4; i++) {\n\
       #pragma HLS unroll factor=2\n\
      \    b.write(a.read() + i);\n\
      \  }\n\
       }\n"
  in
  let reqs, warns = Pass.requests_of_pragmas p in
  Alcotest.(check int) "one typed request" 1 (List.length reqs);
  (match reqs with
  | [ Pass.Unroll { u_loop = Some "i"; u_factor = 2 } ] -> ()
  | _ -> Alcotest.fail "unroll pragma did not become a typed request");
  match warns with
  | [ d ] ->
    let contains_sub ~sub s =
      let n = String.length s and m = String.length sub in
      let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
      at 0
    in
    Alcotest.(check bool) "warning names the pragma" true
      (contains_sub ~sub:"mystery_knob" d.Diag.d_message)
  | l -> Alcotest.failf "expected one warning, got %d" (List.length l)

(* ---- printer + semantic equivalence over generated programs ---- *)

let gen_case seed =
  match Gen.generate Gen.Ksrc (Rng.create seed) with
  | Gen.Src c -> c
  | _ -> Alcotest.fail "Ksrc generated a non-src case"

let prop_printer_roundtrip =
  QCheck.Test.make ~count:60 ~name:"parse . to_source = id on generated sources"
    QCheck.small_nat (fun seed ->
      let c = gen_case seed in
      let p = parse (Gen.src_source c) in
      parse (Ast.to_source p) = p)

let prop_transform_equivalence =
  QCheck.Test.make ~count:60
    ~name:"generated plans preserve per-stream semantics"
    QCheck.small_nat (fun seed ->
      match Oracle.check Oracle.Transform (Gen.Src (gen_case seed)) with
      | Oracle.Pass -> true
      | Oracle.Fail msg -> QCheck.Test.fail_report msg)

(* The oracle would be vacuous if every generated plan were rejected:
   over a fixed seed range, a healthy share must actually rewrite the
   program. Deterministic, so a generator regression fails loudly. *)
let test_generated_plans_apply () =
  let applied = ref 0 and rewritten = ref 0 in
  for seed = 0 to 149 do
    let c = gen_case seed in
    let p = parse (Gen.src_source c) in
    match Plan.of_string c.Gen.sc_plan with
    | Error m -> Alcotest.failf "generated plan %S invalid: %s" c.Gen.sc_plan m
    | Ok plan -> (
      match Plan.apply_source plan p with
      | Error _ -> ()
      | Ok p' ->
        if not (Plan.is_identity plan) then begin
          incr applied;
          if p' <> p then incr rewritten
        end)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "plans applied on %d/150 cases (need >= 25)" !applied)
    true (!applied >= 25);
  Alcotest.(check bool)
    (Printf.sprintf "plans rewrote the program on %d/150 cases (need >= 15)"
       !rewritten)
    true (!rewritten >= 15)

let test_exec_detects_divergence () =
  let k src = ok (Frontend.kernel_of_string src) in
  let k0 = k "void f(stream<int> &a, stream<int> &b) { b.write(a.read() + 1); }" in
  let k1 = k "void f(stream<int> &a, stream<int> &b) { b.write(a.read() + 2); }" in
  let inputs _ i = Int64.of_int (i + 10) in
  let r0 = Exec.run k0.Kernel.dag ~inputs in
  let r1 = Exec.run k1.Kernel.dag ~inputs in
  Alcotest.(check bool) "same program agrees with itself" true
    (Exec.diff r0 r0 = None);
  Alcotest.(check bool) "different constants diverge" true
    (Exec.diff r0 r1 <> None)

(* ---- pipeline integration: per-plan stage caching ---- *)

let pc_src =
  "void pc(stream<int> &a, stream<int> &b) {\n\
  \  int t[16];\n\
  \  for (int i = 0; i < 16; i++) {\n\
  \    t[i] = a.read() * 3;\n\
  \  }\n\
  \  for (int i = 0; i < 16; i++) {\n\
  \    b.write(t[i] + 1);\n\
  \  }\n\
   }\n"

let test_pipeline_plan_caching () =
  let session =
    Pipeline.of_program ~device:Device.ultrascale_plus ~name:"pc_test"
      (parse pc_src)
  in
  let plan =
    match Plan.of_string "unroll=2" with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  let r1 = Pipeline.run_exn session ~plan ~recipe:Style.optimized in
  let runs_of name =
    try List.assoc name (Pipeline.stage_runs session) with Not_found -> 0
  in
  Alcotest.(check int) "one transform execution" 1 (runs_of "transform");
  let r2 = Pipeline.run_exn session ~plan ~recipe:Style.optimized in
  Alcotest.(check int) "recompile reuses the transformed program" 1
    (runs_of "transform");
  let transform_cached =
    List.exists
      (fun (sr : Pipeline.stage_record) ->
        sr.Pipeline.sr_stage = Pipeline.Transform
        && sr.Pipeline.sr_status = Pipeline.Cached)
      (Pipeline.last_run session)
  in
  Alcotest.(check bool) "transform stage reports Cached on recompile" true
    transform_cached;
  Alcotest.(check (float 0.0001)) "cached recompile is byte-stable"
    r1.Pipeline.fr_fmax_mhz r2.Pipeline.fr_fmax_mhz;
  (* a different plan shares nothing: the transform stage runs again *)
  let plan4 =
    match Plan.of_string "unroll=4" with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  ignore (Pipeline.run_exn session ~plan:plan4 ~recipe:Style.optimized);
  Alcotest.(check int) "new plan re-runs the transform stage" 2
    (runs_of "transform")

let test_identity_plan_matches_default () =
  let program = parse pc_src in
  let compile plan =
    let session =
      Pipeline.of_program ~device:Device.ultrascale_plus ~name:"pc_id" program
    in
    Pipeline.run_exn ?plan session ~recipe:Style.optimized
  in
  let a = compile None and b = compile (Some Plan.identity) in
  Alcotest.(check (float 0.0001)) "identity plan = no plan"
    a.Pipeline.fr_fmax_mhz b.Pipeline.fr_fmax_mhz

let test_source_plan_on_ir_session_fails () =
  let session =
    Pipeline.of_kernel ~device:Device.ultrascale_plus
      (ok
         (Frontend.kernel_of_string
            "void k(stream<int> &a, stream<int> &b) { b.write(a.read()); }"))
  in
  let plan =
    match Plan.of_string "unroll=2" with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  match Pipeline.run session ~plan ~recipe:Style.optimized with
  | Ok _ -> Alcotest.fail "source plan on an IR session should fail"
  | Error d ->
    Alcotest.(check string) "diagnosed at the transform stage" "transform"
      d.Diag.d_stage

(* ---- channel reuse ---- *)

(* One producer writing the same value into two identical channels read
   by one consumer: the canonical over-wide communication. *)
let duplicated_network () =
  let df = Dataflow.create () in
  let pd = Dag.create () in
  let fin = Dag.add_fifo pd ~name:"in" ~dtype:(Dtype.Int 32) ~depth:2 in
  let fa = Dag.add_fifo pd ~name:"a" ~dtype:(Dtype.Int 32) ~depth:2 in
  let fb = Dag.add_fifo pd ~name:"b" ~dtype:(Dtype.Int 32) ~depth:2 in
  let v = Dag.fifo_read pd ~fifo:fin in
  ignore (Dag.fifo_write pd ~fifo:fa ~value:v);
  ignore (Dag.fifo_write pd ~fifo:fb ~value:v);
  let cd = Dag.create () in
  let fa' = Dag.add_fifo cd ~name:"a" ~dtype:(Dtype.Int 32) ~depth:2 in
  let fb' = Dag.add_fifo cd ~name:"b" ~dtype:(Dtype.Int 32) ~depth:2 in
  let fout = Dag.add_fifo cd ~name:"out" ~dtype:(Dtype.Int 32) ~depth:2 in
  let ra = Dag.fifo_read cd ~fifo:fa' in
  let rb = Dag.fifo_read cd ~fifo:fb' in
  let s = Dag.op cd Op.Add ~dtype:(Dtype.Int 32) [ ra; rb ] in
  ignore (Dag.fifo_write cd ~fifo:fout ~value:s);
  let p =
    Dataflow.add_process df ~name:"prod"
      ~kernel:(Kernel.create ~name:"prod" pd) ()
  in
  let c =
    Dataflow.add_process df ~name:"cons"
      ~kernel:(Kernel.create ~name:"cons" cd) ()
  in
  ignore (Dataflow.add_channel df ~name:"in" ~src:(-1) ~dst:p ~dtype:(Dtype.Int 32) ());
  ignore (Dataflow.add_channel df ~name:"a" ~src:p ~dst:c ~dtype:(Dtype.Int 32) ());
  ignore (Dataflow.add_channel df ~name:"b" ~src:p ~dst:c ~dtype:(Dtype.Int 32) ());
  ignore (Dataflow.add_channel df ~name:"out" ~src:c ~dst:(-1) ~dtype:(Dtype.Int 32) ());
  df

let test_channel_reuse_merges_and_is_idempotent () =
  let df = duplicated_network () in
  let df', s = Reuse.run df in
  Alcotest.(check int) "one pair merged" 1 s.Reuse.rs_merged;
  Alcotest.(check int) "channel count drops by one" 3 s.Reuse.rs_channels_after;
  Alcotest.(check bool) "broadcast factor shrank" true
    (s.Reuse.rs_broadcast_after < s.Reuse.rs_broadcast_before);
  Alcotest.(check (list string)) "merged network is well-formed" []
    (List.map (fun p -> p.Dataflow.pb_message) (Dataflow.problems df'));
  let df'', s2 = Reuse.run df' in
  Alcotest.(check int) "second run merges nothing" 0 s2.Reuse.rs_merged;
  Alcotest.(check bool) "second run returns the network unchanged" true
    (df'' == df')

let suite =
  [
    Alcotest.test_case "unroll: full replication" `Quick test_unroll_full;
    Alcotest.test_case "unroll: partial with residual loop" `Quick
      test_unroll_partial;
    Alcotest.test_case "fission golden" `Quick test_fission;
    Alcotest.test_case "fusion golden" `Quick test_fusion;
    Alcotest.test_case "fusion . fission = identity" `Quick
      test_fusion_fission_inverse;
    Alcotest.test_case "stream insertion golden" `Quick test_stream_insert;
    Alcotest.test_case "partition reaches the elaborated buffer" `Quick
      test_partition_reaches_buffer;
    Alcotest.test_case "inapplicable requests are structured" `Quick
      test_inapplicable_is_structured;
    Alcotest.test_case "plan grammar round-trips" `Quick test_plan_roundtrip;
    Alcotest.test_case "pragmas become requests + warnings" `Quick
      test_pragma_requests_and_warnings;
    QCheck_alcotest.to_alcotest prop_printer_roundtrip;
    QCheck_alcotest.to_alcotest prop_transform_equivalence;
    Alcotest.test_case "generated plans actually apply" `Quick
      test_generated_plans_apply;
    Alcotest.test_case "Exec detects planted divergence" `Quick
      test_exec_detects_divergence;
    Alcotest.test_case "pipeline caches the transform per plan" `Quick
      test_pipeline_plan_caching;
    Alcotest.test_case "identity plan matches the default path" `Quick
      test_identity_plan_matches_default;
    Alcotest.test_case "source plan on IR session is diagnosed" `Quick
      test_source_plan_on_ir_session_fails;
    Alcotest.test_case "channel reuse merges and is idempotent" `Quick
      test_channel_reuse_merges_and_is_idempotent;
  ]
