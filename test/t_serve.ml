(* Compile-service tests: the content-addressed artifact store
   (round-trip, namespace isolation, key sensitivity, LRU eviction),
   cross-PROCESS concurrency on both hardened writers (two re-exec'd
   worker processes hammering Cal_cache.store and Store.put on shared
   paths must leave only complete, parseable files), the hlsbd protocol
   codec and framing, and the daemon itself — in-process via
   Daemon.handle (repeat compile is a store hit, byte-identical to the
   in-process Flow result) and over a real Unix socket via Client. *)

module Json = Hlsb_telemetry.Json
module Metrics = Hlsb_telemetry.Metrics
module Diag = Hlsb_util.Diag
module Atomic_file = Hlsb_util.Atomic_file
module Cal_cache = Hlsb_delay.Cal_cache
module Calibrate = Hlsb_delay.Calibrate
module Device = Hlsb_device.Device
module Style = Hlsb_ctrl.Style
module Spec = Hlsb_designs.Spec
module Suite = Hlsb_designs.Suite
module Store = Hlsb_serve.Store
module Protocol = Hlsb_serve.Protocol
module Daemon = Hlsb_serve.Daemon
module Client = Hlsb_serve.Client
module Ledger = Hlsb_obs.Ledger

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let with_temp_dir f =
  let base = Filename.temp_file "hlsb-serve" "" in
  Sys.remove base;
  Sys.mkdir base 0o755;
  Fun.protect ~finally:(fun () -> rm_rf base) (fun () -> f base)

(* ---- store round-trip / isolation / keys ---- *)

let test_store_roundtrip () =
  with_temp_dir (fun root ->
    let t = Store.open_ ~root () in
    let key = Store.key ~parts:[ "compile"; "devfp"; "vec"; "optimized" ] in
    Alcotest.(check (option string)) "cold miss" None (Store.find t ~ns:"a" ~key);
    (match Store.put t ~ns:"a" ~key "artifact-bytes\n" with
    | Ok () -> ()
    | Error m -> Alcotest.fail m);
    Alcotest.(check (option string))
      "hit returns the bytes" (Some "artifact-bytes\n")
      (Store.find t ~ns:"a" ~key);
    let st = Store.stats t in
    Alcotest.(check int) "one entry" 1 st.Store.st_entries;
    Alcotest.(check int) "hit counted" 1 st.Store.st_hits;
    Alcotest.(check int) "miss counted" 1 st.Store.st_misses;
    Alcotest.(check int) "put counted" 1 st.Store.st_puts;
    Alcotest.(check int) "bytes on disk"
      (String.length "artifact-bytes\n")
      st.Store.st_bytes)

let test_store_namespace_isolation () =
  with_temp_dir (fun root ->
    let t = Store.open_ ~root () in
    let key = Store.key ~parts:[ "k" ] in
    (match Store.put t ~ns:"alice" ~key "alice-bytes" with
    | Ok () -> ()
    | Error m -> Alcotest.fail m);
    Alcotest.(check (option string))
      "other namespace cannot see it" None
      (Store.find t ~ns:"bob" ~key);
    Alcotest.(check (option string))
      "owner still hits" (Some "alice-bytes")
      (Store.find t ~ns:"alice" ~key))

let test_store_key_sensitivity () =
  let base = [ "compile"; "fp"; "rev"; "design"; "optimized||@300" ] in
  let k = Store.key ~parts:base in
  Alcotest.(check string) "key is deterministic" k (Store.key ~parts:base);
  List.iteri
    (fun i _ ->
      let tweaked = List.mapi (fun j p -> if i = j then p ^ "x" else p) base in
      Alcotest.(check bool)
        (Printf.sprintf "part %d changes the key" i)
        true
        (Store.key ~parts:tweaked <> k))
    base;
  (* '\x00' joining means parts cannot alias across boundaries *)
  Alcotest.(check bool) "no concatenation aliasing" true
    (Store.key ~parts:[ "ab"; "c" ] <> Store.key ~parts:[ "a"; "bc" ])

let test_store_lru_eviction () =
  with_temp_dir (fun root ->
    (* budget of 3 payloads; 5 puts with strictly increasing mtimes *)
    let payload i = Printf.sprintf "payload-%d-%s" i (String.make 100 'x') in
    let bytes = String.length (payload 0) in
    let t = Store.open_ ~budget_bytes:(3 * bytes) ~root () in
    let keys = List.init 5 (fun i -> Store.key ~parts:[ "e"; string_of_int i ]) in
    List.iteri
      (fun i key ->
        (match Store.put t ~ns:"n" ~key (payload i) with
        | Ok () -> ()
        | Error m -> Alcotest.fail m);
        (* the LRU clock is mtime: age each entry behind the next *)
        let path =
          Filename.concat
            (Filename.concat (Filename.concat root "n")
               (String.sub key 0 2))
            key
        in
        let age = float_of_int (1000 - (100 * i)) in
        Unix.utimes path (Unix.gettimeofday () -. age)
          (Unix.gettimeofday () -. age))
      keys;
    ignore (Store.gc t);
    let st = Store.stats t in
    Alcotest.(check int) "evicted down to budget" 3 st.Store.st_entries;
    Alcotest.(check bool) "within budget" true (st.Store.st_bytes <= 3 * bytes);
    (* oldest two (0, 1) evicted; newest three survive *)
    List.iteri
      (fun i key ->
        let got = Store.find t ~ns:"n" ~key in
        if i < 2 then
          Alcotest.(check (option string))
            (Printf.sprintf "entry %d evicted" i)
            None got
        else
          Alcotest.(check (option string))
            (Printf.sprintf "entry %d survives" i)
            (Some (payload i)) got)
      keys)

let test_sanitize_ns () =
  Alcotest.(check string) "passthrough" "uid1000" (Store.sanitize_ns "uid1000");
  Alcotest.(check string) "lowered and stripped" "alicehost"
    (Store.sanitize_ns "Alice@Host!");
  Alcotest.(check string) "empty becomes default" "default"
    (Store.sanitize_ns "../..")

(* ---- cross-process writers (the Cal_cache temp-name collision bug) ---- *)

let hammer_iters = 30
let hammer_keys = 8
let worker_env_var = "HLSB_T_SERVE_WORKER"

let hammer_payload tag k =
  Printf.sprintf "%s:%d:%s\n" tag k (String.make 2048 tag.[0])

(* Curves must match the grids exactly or [load] treats the file as
   invalid — which is precisely what makes load a whole-file validity
   check for this test. *)
let hammer_entry tag i =
  {
    Cal_cache.e_ops =
      [
        ( "add/" ^ tag,
          Array.make (Array.length Calibrate.factor_grid) (float_of_int i) );
      ];
    e_mem_wr = Some (Array.make (Array.length Calibrate.unit_grid) 1.0);
    e_mem_rd = None;
  }

let cal_dev = Device.ultrascale_plus

(* Re-exec'd worker body: hammer Cal_cache.store and Store.put against
   directories shared with a sibling process. Returns the exit code. *)
let worker spec =
  match String.split_on_char '|' spec with
  | [ "hammer"; cal_dir; store_root; ns; tag ] ->
    let st = Store.open_ ~root:store_root () in
    let ok = ref true in
    for i = 0 to hammer_iters - 1 do
      Cal_cache.store ~dir:cal_dir ~factor_grid:Calibrate.factor_grid
        ~unit_grid:Calibrate.unit_grid cal_dev (hammer_entry tag i);
      (* rename is atomic: after our first store, a load must always see
         a complete valid file (ours or the sibling's) *)
      if
        Cal_cache.load ~dir:cal_dir ~factor_grid:Calibrate.factor_grid
          ~unit_grid:Calibrate.unit_grid cal_dev
        = None
      then ok := false;
      let k = i mod hammer_keys in
      let key = Store.key ~parts:[ "hammer"; string_of_int k ] in
      (match Store.put st ~ns ~key (hammer_payload tag k) with
      | Ok () -> ()
      | Error _ -> ok := false)
    done;
    if !ok then 0 else 1
  | _ ->
    prerr_endline ("t_serve worker: bad spec " ^ spec);
    2

let spawn_worker spec =
  let env =
    Array.append (Unix.environment ())
      [| Printf.sprintf "%s=%s" worker_env_var spec |]
  in
  Unix.create_process_env Sys.executable_name
    [| Sys.executable_name |]
    env Unix.stdin Unix.stdout Unix.stderr

let test_multiprocess_writers () =
  with_temp_dir (fun cal_dir ->
    with_temp_dir (fun store_root ->
      let spec tag =
        String.concat "|" [ "hammer"; cal_dir; store_root; "ns"; tag ]
      in
      let p1 = spawn_worker (spec "aa") in
      let p2 = spawn_worker (spec "bb") in
      let wait p =
        match Unix.waitpid [] p with
        | _, Unix.WEXITED 0 -> ()
        | _, Unix.WEXITED n ->
          Alcotest.failf "writer process exited with %d (torn file seen?)" n
        | _ -> Alcotest.fail "writer process killed"
      in
      wait p1;
      wait p2;
      (* the calibration cache file is complete and valid *)
      (match
         Cal_cache.load ~dir:cal_dir ~factor_grid:Calibrate.factor_grid
           ~unit_grid:Calibrate.unit_grid cal_dev
       with
      | None -> Alcotest.fail "cal cache unreadable after concurrent writers"
      | Some e ->
        Alcotest.(check bool) "one writer's complete entry" true
          (e.Cal_cache.e_ops = (hammer_entry "aa" (hammer_iters - 1)).Cal_cache.e_ops
          || e.Cal_cache.e_ops
             = (hammer_entry "bb" (hammer_iters - 1)).Cal_cache.e_ops));
      (* every hammered store entry is one writer's payload, never an
         interleaving *)
      let st = Store.open_ ~root:store_root () in
      for k = 0 to hammer_keys - 1 do
        let key = Store.key ~parts:[ "hammer"; string_of_int k ] in
        match Store.find st ~ns:"ns" ~key with
        | None -> Alcotest.failf "store entry %d missing" k
        | Some bytes ->
          Alcotest.(check bool)
            (Printf.sprintf "entry %d is a complete payload" k)
            true
            (bytes = hammer_payload "aa" k || bytes = hammer_payload "bb" k)
      done))

(* ---- protocol codec + framing ---- *)

let sample_requests =
  [
    {
      Protocol.q_id = "1";
      q_ns = "alice";
      q_verb =
        Protocol.Compile
          {
            Protocol.cp_design = "Vector Arithmetic";
            cp_recipe = Style.optimized;
            cp_target_mhz = Some 350.;
            cp_inject = Some { Hlsb_sched.Schedule.inj_top = 2; inj_levels = 1 };
          };
    };
    {
      Protocol.q_id = "2";
      q_ns = "bob";
      q_verb =
        Protocol.Cc
          {
            Protocol.cc_name = "k";
            cc_source = "void k() {\n}\n";
            cc_recipe = Style.original;
            cc_plan =
              (match Hlsb_transform.Plan.of_string "unroll=4;channel-reuse" with
              | Ok p -> p
              | Error _ -> assert false);
          };
    };
    { Protocol.q_id = "3"; q_ns = "c"; q_verb = Protocol.Characterize "zynq" };
    {
      Protocol.q_id = "4";
      q_ns = "d";
      q_verb =
        Protocol.Explore
          { Protocol.ex_design = "LSTM"; ex_budget = 4; ex_max_probes = 3 };
    };
    { Protocol.q_id = "5"; q_ns = "e"; q_verb = Protocol.Status };
    { Protocol.q_id = "6"; q_ns = "f"; q_verb = Protocol.Gc };
    { Protocol.q_id = "7"; q_ns = "g"; q_verb = Protocol.Shutdown };
  ]

let test_protocol_request_roundtrip () =
  List.iter
    (fun req ->
      let j = Protocol.request_to_json req in
      (* through the actual wire bytes, not just the tree *)
      let text = Json.to_string ~minify:true j in
      match Json.of_string text with
      | Error m -> Alcotest.fail m
      | Ok j' -> (
        match Protocol.request_of_json j' with
        | Error m -> Alcotest.fail m
        | Ok req' ->
          Alcotest.(check bool)
            (Printf.sprintf "request %s round-trips" req.Protocol.q_id)
            true (req = req')))
    sample_requests

let test_protocol_response_roundtrip () =
  let diag =
    Diag.error ~stage:"lower"
      ~entity:(Diag.Channel "c0")
      "fifo width mismatch"
  in
  let samples =
    [
      Protocol.ok ~hit:true ~key:"abc" ~id:"1" "artifact\nbytes\n";
      Protocol.ok ~id:"2" "";
      Protocol.fail ~id:"3" diag;
    ]
  in
  List.iter
    (fun resp ->
      match Protocol.response_of_json (Protocol.response_to_json resp) with
      | Error m -> Alcotest.fail m
      | Ok resp' ->
        Alcotest.(check bool)
          (Printf.sprintf "response %s round-trips" resp.Protocol.p_id)
          true (resp = resp'))
    samples;
  (* the diagnostic payload survives with stage and entity intact *)
  match Protocol.diag_of_json (Protocol.diag_to_json diag) with
  | Error m -> Alcotest.fail m
  | Ok d ->
    Alcotest.(check string) "stage" "lower" d.Diag.d_stage;
    Alcotest.(check bool) "entity" true (d.Diag.d_entity = Some (Diag.Channel "c0"))

let test_protocol_rejects_wrong_schema () =
  let j =
    Json.Obj
      [ ("schema", Json.Str "hlsbd/999"); ("id", Json.Str "x");
        ("ns", Json.Str "n"); ("verb", Json.Str "status") ]
  in
  Alcotest.(check bool) "wrong schema rejected" true
    (Result.is_error (Protocol.request_of_json j))

let test_framing_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      let req = List.hd sample_requests in
      (* artifact bytes with embedded newlines must frame cleanly *)
      let resp = Protocol.ok ~id:"1" "line1\nline2\n" in
      (match Protocol.write_frame a (Protocol.request_to_json req) with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      (match Protocol.read_frame b with
      | Error m -> Alcotest.fail m
      | Ok j ->
        Alcotest.(check bool) "request over the wire" true
          (Protocol.request_of_json j = Ok req));
      (match Protocol.write_frame b (Protocol.response_to_json resp) with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      match Protocol.read_frame a with
      | Error m -> Alcotest.fail m
      | Ok j ->
        Alcotest.(check bool) "response over the wire" true
          (Protocol.response_of_json j = Ok resp))

(* ---- the daemon ---- *)

let vec_spec =
  match Suite.find "Vector Arithmetic" with
  | Some s -> s
  | None -> Alcotest.fail "Vector Arithmetic missing from the suite"

let compile_verb =
  Protocol.Compile
    {
      Protocol.cp_design = vec_spec.Spec.sp_name;
      cp_recipe = Style.optimized;
      cp_target_mhz = None;
      cp_inject = None;
    }

let req ?(ns = "t") id verb = { Protocol.q_id = id; q_ns = ns; q_verb = verb }

let check_ok (resp : Protocol.response) =
  match resp.Protocol.p_error with
  | None -> resp
  | Some d -> Alcotest.failf "daemon error: %s" (Diag.to_string d)

let test_daemon_repeat_compile_hits_byte_identical () =
  with_temp_dir (fun root ->
    let t = Daemon.create ~store_root:root ~ledger:false () in
    let r1 = check_ok (Daemon.handle t (req "1" compile_verb)) in
    Alcotest.(check bool) "first compile misses" false r1.Protocol.p_hit;
    let r2 = check_ok (Daemon.handle t (req "2" compile_verb)) in
    Alcotest.(check bool) "repeat compile is a store hit" true
      r2.Protocol.p_hit;
    Alcotest.(check string) "same key" r1.Protocol.p_key r2.Protocol.p_key;
    Alcotest.(check string) "byte-identical artifact" r1.Protocol.p_artifact
      r2.Protocol.p_artifact;
    (* ... and byte-identical to what an in-process compile prints *)
    let r = Core.Flow.compile_spec ~recipe:Style.optimized vec_spec in
    Alcotest.(check string) "matches the in-process result record"
      (Json.to_string ~minify:false (Core.Flow.result_to_json r) ^ "\n")
      r1.Protocol.p_artifact;
    (* a different namespace cannot be served from alice's artifacts *)
    let r3 = check_ok (Daemon.handle t (req ~ns:"other" "3" compile_verb)) in
    Alcotest.(check bool) "fresh namespace misses" false r3.Protocol.p_hit;
    Alcotest.(check string) "but compiles the same bytes"
      r1.Protocol.p_artifact r3.Protocol.p_artifact;
    (* a persisted store serves a brand-new daemon (a new process, as far
       as keys are concerned) from disk *)
    let t2 = Daemon.create ~store_root:root ~ledger:false () in
    let r4 = check_ok (Daemon.handle t2 (req "4" compile_verb)) in
    Alcotest.(check bool) "fresh daemon hits the persisted store" true
      r4.Protocol.p_hit;
    Alcotest.(check string) "same bytes from disk" r1.Protocol.p_artifact
      r4.Protocol.p_artifact)

let test_daemon_error_is_structured () =
  with_temp_dir (fun root ->
    let t = Daemon.create ~store_root:root ~ledger:false () in
    let bad =
      Protocol.Compile
        {
          Protocol.cp_design = "No Such Design";
          cp_recipe = Style.optimized;
          cp_target_mhz = None;
          cp_inject = None;
        }
    in
    match (Daemon.handle t (req "1" bad)).Protocol.p_error with
    | None -> Alcotest.fail "unknown design must fail"
    | Some d ->
      Alcotest.(check string) "stage" "serve" d.Diag.d_stage;
      Alcotest.(check bool) "entity names the design" true
        (d.Diag.d_entity = Some (Diag.Design "No Such Design")))

let test_daemon_status_and_gc () =
  with_temp_dir (fun root ->
    let t = Daemon.create ~store_root:root ~ledger:false () in
    ignore (check_ok (Daemon.handle t (req "1" compile_verb)));
    ignore (check_ok (Daemon.handle t (req "2" compile_verb)));
    let status = check_ok (Daemon.handle t (req "3" Protocol.Status)) in
    (match Json.of_string status.Protocol.p_artifact with
    | Error m -> Alcotest.fail m
    | Ok j ->
      Alcotest.(check bool) "status schema" true
        (Json.member "schema" j = Some (Json.Str "hlsbd-status/1"));
      (match Json.member "hit_rate" j with
      | Some (Json.Float r) ->
        Alcotest.(check bool) "hit rate > 0 after a repeat compile" true
          (r > 0.)
      | _ -> Alcotest.fail "hit_rate missing"));
    let gc = check_ok (Daemon.handle t (req "4" Protocol.Gc)) in
    match Json.of_string gc.Protocol.p_artifact with
    | Error m -> Alcotest.fail m
    | Ok j ->
      Alcotest.(check bool) "gc evicts nothing under budget" true
        (Json.member "evicted" j = Some (Json.Int 0)))

let test_daemon_over_socket () =
  with_temp_dir (fun root ->
    let sock = Filename.temp_file "hlsbd-t" ".sock" in
    Sys.remove sock;
    let t = Daemon.create ~store_root:root ~ledger:false () in
    let server = Domain.spawn (fun () -> Daemon.serve t ~socket:sock) in
    let rec await n =
      if n = 0 then Alcotest.fail "daemon socket never appeared"
      else if Sys.file_exists sock then ()
      else (
        Unix.sleepf 0.05;
        await (n - 1))
    in
    await 100;
    let call verb =
      match Client.call ~socket:sock ~ns:"t" verb with
      | Ok resp -> check_ok resp
      | Error m -> Alcotest.failf "client: %s" m
    in
    Alcotest.(check bool) "daemon answers status" true
      (Client.available ~socket:sock ());
    let r1 = call compile_verb in
    let r2 = call compile_verb in
    Alcotest.(check bool) "second socket compile hits" true r2.Protocol.p_hit;
    Alcotest.(check string) "byte-identical over the socket"
      r1.Protocol.p_artifact r2.Protocol.p_artifact;
    ignore (call Protocol.Shutdown);
    (match Domain.join server with
    | Ok () -> ()
    | Error m -> Alcotest.failf "serve loop: %s" m);
    Alcotest.(check bool) "socket file removed on exit" false
      (Sys.file_exists sock);
    Alcotest.(check bool) "daemon no longer answers" false
      (Client.available ~socket:sock ()))

(* ---- ledger sync (satellite: torn-append hardening) ---- *)

let test_ledger_sync_append () =
  let path = Filename.temp_file "hlsb-ledger-sync" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let run = Ledger.make ~cmd:"serve" ~label:"sync-test" () in
      (match Ledger.append ~path ~sync:true run with
      | Ok p -> Alcotest.(check string) "path echoed" path p
      | Error m -> Alcotest.fail m);
      match Ledger.load ~path with
      | Error m -> Alcotest.fail m
      | Ok [ loaded ] ->
        Alcotest.(check string) "record intact" run.Ledger.r_id
          loaded.Ledger.r_id
      | Ok l -> Alcotest.failf "expected 1 record, got %d" (List.length l))

(* ---- atomic writer (same-process concurrency) ---- *)

let test_atomic_file_concurrent_writers () =
  with_temp_dir (fun dir ->
    let path = Filename.concat dir "contended" in
    let payload tag = Printf.sprintf "%s:%s\n" tag (String.make 4096 tag.[0]) in
    let tags = [| "a"; "b"; "c"; "d" |] in
    let domains =
      Array.map
        (fun tag ->
          Domain.spawn (fun () ->
            for _ = 1 to 20 do
              Atomic_file.write_exn ~path (payload tag)
            done))
        tags
    in
    Array.iter Domain.join domains;
    match Atomic_file.read path with
    | None -> Alcotest.fail "file missing after concurrent writers"
    | Some bytes ->
      Alcotest.(check bool) "file is one writer's complete payload" true
        (Array.exists (fun tag -> bytes = payload tag) tags))

let test_atomic_temp_suffix_unique () =
  let n = 64 in
  let seen = Hashtbl.create n in
  for _ = 1 to n do
    Hashtbl.replace seen (Atomic_file.temp_suffix ()) ()
  done;
  Alcotest.(check int) "suffixes never repeat in-process" n
    (Hashtbl.length seen)

let suite =
  [
    Alcotest.test_case "store: round-trip + stats" `Quick test_store_roundtrip;
    Alcotest.test_case "store: namespace isolation" `Quick
      test_store_namespace_isolation;
    Alcotest.test_case "store: key sensitivity" `Quick
      test_store_key_sensitivity;
    Alcotest.test_case "store: LRU eviction to budget" `Quick
      test_store_lru_eviction;
    Alcotest.test_case "store: namespace sanitization" `Quick test_sanitize_ns;
    Alcotest.test_case "cross-process: concurrent writers leave whole files"
      `Slow test_multiprocess_writers;
    Alcotest.test_case "protocol: request round-trip" `Quick
      test_protocol_request_roundtrip;
    Alcotest.test_case "protocol: response + diag round-trip" `Quick
      test_protocol_response_roundtrip;
    Alcotest.test_case "protocol: schema mismatch rejected" `Quick
      test_protocol_rejects_wrong_schema;
    Alcotest.test_case "protocol: socket framing" `Quick test_framing_roundtrip;
    Alcotest.test_case "daemon: repeat compile hits, byte-identical" `Slow
      test_daemon_repeat_compile_hits_byte_identical;
    Alcotest.test_case "daemon: structured error responses" `Quick
      test_daemon_error_is_structured;
    Alcotest.test_case "daemon: status + gc verbs" `Slow
      test_daemon_status_and_gc;
    Alcotest.test_case "daemon: full client/server over a Unix socket" `Slow
      test_daemon_over_socket;
    Alcotest.test_case "ledger: fsynced append round-trips" `Quick
      test_ledger_sync_append;
    Alcotest.test_case "atomic writer: concurrent domains" `Quick
      test_atomic_file_concurrent_writers;
    Alcotest.test_case "atomic writer: unique temp suffixes" `Quick
      test_atomic_temp_suffix_unique;
  ]
