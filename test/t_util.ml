(* Unit + property tests for the utility library. *)

module Stats = Hlsb_util.Stats
module Rng = Hlsb_util.Rng
module Intgraph = Hlsb_util.Intgraph
module Vec = Hlsb_util.Vec
module Table = Hlsb_util.Table
module Pool = Hlsb_util.Pool

let feq ?(eps = 1e-9) a b = abs_float (a -. b) < eps

let check_float name expected got =
  Alcotest.(check (float 1e-9)) name expected got

(* ---- Stats ---- *)

let test_mean () =
  check_float "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  check_float "singleton" 5. (Stats.mean [ 5. ])

let test_mean_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty")
    (fun () -> ignore (Stats.mean []))

let test_stddev () =
  check_float "constant" 0. (Stats.stddev [ 4.; 4.; 4. ]);
  Alcotest.(check bool) "two-point" true (feq (Stats.stddev [ 0.; 2. ]) 1.)

let test_percentile () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  check_float "p0" 1. (Stats.percentile 0. xs);
  check_float "p50" 3. (Stats.percentile 50. xs);
  check_float "p100" 5. (Stats.percentile 100. xs);
  check_float "p25" 2. (Stats.percentile 25. xs)

let test_percentile_range () =
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile 150. [ 1. ]))

let test_smooth_identity () =
  let xs = [| 1.; 5.; 2.; 8. |] in
  let s = Stats.smooth_neighbors ~window:0 xs in
  Alcotest.(check (array (float 1e-9))) "window 0 is identity" xs s

let test_smooth_window1 () =
  let s = Stats.smooth_neighbors ~window:1 [| 0.; 3.; 6. |] in
  check_float "left edge" 1.5 s.(0);
  check_float "middle" 3. s.(1);
  check_float "right edge" 4.5 s.(2)

let test_smooth_preserves_constant () =
  let s = Stats.smooth_neighbors ~window:3 (Array.make 10 7.) in
  Array.iter (fun v -> check_float "constant" 7. v) s

let test_total_variation () =
  check_float "tv" 6. (Stats.total_variation [| 0.; 3.; 0.; 3. |] -. 3.);
  check_float "tv empty" 0. (Stats.total_variation [||])

let test_geometric_mean () =
  check_float "gm" 2. (Stats.geometric_mean [ 1.; 4. ]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geometric_mean: non-positive") (fun () ->
      ignore (Stats.geometric_mean [ 1.; 0. ]))

let prop_smoothing_reduces_variation =
  QCheck.Test.make ~count:200
    ~name:"smoothing does not increase total variation"
    QCheck.(list_of_size (Gen.int_range 2 40) (float_bound_exclusive 100.))
    (fun xs ->
      let arr = Array.of_list xs in
      let s = Stats.smooth_neighbors ~window:1 arr in
      Stats.total_variation s <= Stats.total_variation arr +. 1e-9)

let prop_percentile_bounds =
  QCheck.Test.make ~count:200 ~name:"percentile within min/max"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 30) (float_bound_exclusive 100.))
        (float_bound_inclusive 100.))
    (fun (xs, p) ->
      let v = Stats.percentile p xs in
      let lo = List.fold_left min infinity xs in
      let hi = List.fold_left max neg_infinity xs in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

(* ---- Rng ---- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 50 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_bad_bound () =
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound <= 0")
    (fun () -> ignore (Rng.int (Rng.create 1) 0))

let test_rng_float_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0. && v < 2.5)
  done

let test_rng_split_independent () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_gaussian_moments () =
  let rng = Rng.create 11 in
  let n = 20000 in
  let xs = List.init n (fun _ -> Rng.gaussian rng ~mu:2. ~sigma:0.5) in
  let m = Stats.mean xs in
  let s = Stats.stddev xs in
  Alcotest.(check bool) "mean ~ 2" true (abs_float (m -. 2.) < 0.02);
  Alcotest.(check bool) "sigma ~ 0.5" true (abs_float (s -. 0.5) < 0.02)

(* ---- Intgraph ---- *)

let diamond () =
  let g = Intgraph.create 4 in
  Intgraph.add_edge g 0 1;
  Intgraph.add_edge g 0 2;
  Intgraph.add_edge g 1 3;
  Intgraph.add_edge g 2 3;
  g

let test_graph_topo () =
  match Intgraph.topological_order (diamond ()) with
  | None -> Alcotest.fail "diamond is acyclic"
  | Some order ->
    let pos = Array.make 4 0 in
    List.iteri (fun i v -> pos.(v) <- i) order;
    Alcotest.(check bool) "0 before 1" true (pos.(0) < pos.(1));
    Alcotest.(check bool) "1 before 3" true (pos.(1) < pos.(3));
    Alcotest.(check bool) "2 before 3" true (pos.(2) < pos.(3))

let test_graph_cycle () =
  let g = Intgraph.create 2 in
  Intgraph.add_edge g 0 1;
  Intgraph.add_edge g 1 0;
  Alcotest.(check bool) "cycle detected" true
    (Intgraph.topological_order g = None)

let test_graph_components () =
  let g = Intgraph.create 5 in
  Intgraph.add_edge g 0 1;
  Intgraph.add_edge g 3 4;
  let comp = Intgraph.connected_components g in
  Alcotest.(check bool) "0~1" true (comp.(0) = comp.(1));
  Alcotest.(check bool) "3~4" true (comp.(3) = comp.(4));
  Alcotest.(check bool) "0!~3" true (comp.(0) <> comp.(3));
  Alcotest.(check bool) "2 alone" true (comp.(2) <> comp.(0) && comp.(2) <> comp.(3))

let test_graph_longest_path () =
  match Intgraph.longest_path_lengths (diamond ()) ~weight:(fun _ -> 1.) with
  | None -> Alcotest.fail "acyclic"
  | Some dist ->
    check_float "source" 1. dist.(0);
    check_float "sink depth" 3. dist.(3)

let test_graph_reachable () =
  let g = diamond () in
  let r = Intgraph.reachable_from g [ 1 ] in
  Alcotest.(check bool) "1 reaches 3" true r.(3);
  Alcotest.(check bool) "1 not 2" false r.(2);
  Alcotest.(check bool) "1 not 0" false r.(0)

let test_graph_bad_edge () =
  let g = Intgraph.create 2 in
  Alcotest.check_raises "range" (Invalid_argument "Intgraph: node out of range")
    (fun () -> Intgraph.add_edge g 0 5)

let prop_topo_respects_edges =
  QCheck.Test.make ~count:100 ~name:"topological order respects random DAGs"
    QCheck.(small_nat)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 20 in
      let g = Intgraph.create n in
      let edges = ref [] in
      for _ = 1 to n * 2 do
        let a = Rng.int rng n and b = Rng.int rng n in
        (* forward edges only: guaranteed acyclic *)
        if a < b then begin
          Intgraph.add_edge g a b;
          edges := (a, b) :: !edges
        end
      done;
      match Intgraph.topological_order g with
      | None -> false
      | Some order ->
        let pos = Array.make n 0 in
        List.iteri (fun i v -> pos.(v) <- i) order;
        List.for_all (fun (a, b) -> pos.(a) < pos.(b)) !edges)

(* ---- Vec ---- *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    let idx = Vec.push v (i * 2) in
    Alcotest.(check int) "index" i idx
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 84 (Vec.get v 42)

let test_vec_set () =
  let v = Vec.create () in
  ignore (Vec.push v 1);
  Vec.set v 0 9;
  Alcotest.(check int) "set" 9 (Vec.get v 0)

let test_vec_bounds () =
  let v = Vec.create () in
  ignore (Vec.push v 1);
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index out of range")
    (fun () -> ignore (Vec.get v 1))

let test_vec_fold () =
  let v = Vec.create () in
  List.iter (fun x -> ignore (Vec.push v x)) [ 1; 2; 3 ];
  Alcotest.(check int) "fold" 6 (Vec.fold_left ( + ) 0 v);
  Alcotest.(check (array int)) "to_array" [| 1; 2; 3 |] (Vec.to_array v)

(* ---- Table ---- *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_table_render () =
  let t = Table.create ~headers:[ ("a", Table.Left); ("b", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "yy"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "contains rows" true
    (contains ~needle:"yy" s && contains ~needle:"22" s);
  (* all lines equal width *)
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let w = String.length (List.hd lines) in
  List.iter
    (fun l -> Alcotest.(check int) "line width" w (String.length l))
    lines

let test_table_arity () =
  let t = Table.create ~headers:[ ("a", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "x"; "y" ])

(* ---- Pool ---- *)

let test_pool_matches_sequential () =
  let arr = Array.init 100 (fun i -> i) in
  let f x = (x * 37) mod 101 in
  let expected = Array.map f arr in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Pool.map ~jobs f arr))
    [ 1; 2; 3; 4; 8 ]

let test_pool_mapi () =
  let arr = Array.make 50 10 in
  Alcotest.(check (array int))
    "mapi"
    (Array.mapi (fun i x -> i + x) arr)
    (Pool.mapi ~jobs:4 (fun i x -> i + x) arr)

let test_pool_map_list () =
  let xs = List.init 33 string_of_int in
  Alcotest.(check (list string))
    "map_list"
    (List.map (fun s -> s ^ "!") xs)
    (Pool.map_list ~jobs:3 (fun s -> s ^ "!") xs)

let test_pool_iter () =
  let total = Atomic.make 0 in
  Pool.iter ~jobs:4
    (fun x -> ignore (Atomic.fetch_and_add total x))
    (Array.init 100 (fun i -> i));
  Alcotest.(check int) "iter visits everything" 4950 (Atomic.get total)

let test_pool_exception () =
  Alcotest.check_raises "task exception propagates" (Failure "boom") (fun () ->
      ignore
        (Pool.map ~jobs:4
           (fun i -> if i = 13 then failwith "boom" else i)
           (Array.init 64 (fun i -> i))))

let test_pool_nested () =
  (* nested maps degrade to sequential inside workers but stay correct *)
  let expected =
    Array.init 16 (fun i -> Array.init 8 (fun y -> (i * 10) + y))
  in
  let got =
    Pool.map ~jobs:4
      (fun base -> Pool.map ~jobs:4 (fun y -> base + y) (Array.init 8 (fun i -> i)))
      (Array.init 16 (fun i -> i * 10))
  in
  Alcotest.(check (array (array int))) "nested" expected got

let test_pool_bad_jobs () =
  Alcotest.check_raises "jobs < 1"
    (Invalid_argument "Pool.set_default_jobs: jobs < 1") (fun () ->
      Pool.set_default_jobs 0);
  Alcotest.(check bool) "default >= 1" true (Pool.default_jobs () >= 1)

let test_pool_parse_jobs () =
  (match Pool.parse_jobs "4" with
  | Ok 4 -> ()
  | _ -> Alcotest.fail "\"4\" should parse as 4");
  (match Pool.parse_jobs " \t8 " with
  | Ok 8 -> ()
  | _ -> Alcotest.fail "surrounding whitespace should be ignored");
  List.iter
    (fun s ->
      match Pool.parse_jobs s with
      | Error reason ->
        Alcotest.(check bool)
          (Printf.sprintf "%S error has a reason" s)
          true
          (String.length reason > 0)
      | Ok n -> Alcotest.failf "%S accepted as %d" s n)
    [ "abc"; "0"; "-3"; ""; "1.5"; "2 jobs" ]

let test_pool_env_malformed_falls_back () =
  (* A malformed HLSB_JOBS is ambient environment, not an explicit flag: it
     must degrade to 1 job (with a warning), never crash or guess. The
     variable cannot be portably unset, so restore a benign "1". *)
  Fun.protect
    ~finally:(fun () -> Unix.putenv Pool.env_var "1")
    (fun () ->
      List.iter
        (fun bad ->
          Unix.putenv Pool.env_var bad;
          Alcotest.(check int)
            (Printf.sprintf "%S falls back to 1 job" bad)
            1 (Pool.default_jobs ()))
        [ "abc"; "0"; "-2"; "" ];
      (* a well-formed value is honored (capped at the core count) *)
      Unix.putenv Pool.env_var "2";
      let d = Pool.default_jobs () in
      Alcotest.(check bool) "valid value in range" true (d >= 1 && d <= 2))

let test_pool_reuses_workers_across_batches () =
  (* many small batches through the persistent pool: every batch must see
     the same results as Array.map even though the worker domains are
     parked and reused rather than respawned *)
  for batch = 1 to 40 do
    let arr = Array.init (batch * 3) (fun i -> i) in
    let f x = (x * batch) + 1 in
    Alcotest.(check (array int))
      (Printf.sprintf "batch %d" batch)
      (Array.map f arr)
      (Pool.map ~jobs:4 f arr)
  done

let prop_pool_matches_map =
  QCheck.Test.make ~count:50 ~name:"pool map matches Array.map at any job count"
    QCheck.(pair (list (int_bound 10000)) (int_range 1 8))
    (fun (xs, jobs) ->
      let arr = Array.of_list xs in
      let f x = (x * x) - (3 * x) in
      Pool.map ~jobs f arr = Array.map f arr)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    Alcotest.test_case "stats mean" `Quick test_mean;
    Alcotest.test_case "stats mean empty" `Quick test_mean_empty;
    Alcotest.test_case "stats stddev" `Quick test_stddev;
    Alcotest.test_case "stats percentile" `Quick test_percentile;
    Alcotest.test_case "stats percentile range" `Quick test_percentile_range;
    Alcotest.test_case "smooth identity" `Quick test_smooth_identity;
    Alcotest.test_case "smooth window 1" `Quick test_smooth_window1;
    Alcotest.test_case "smooth constant" `Quick test_smooth_preserves_constant;
    Alcotest.test_case "total variation" `Quick test_total_variation;
    Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng bad bound" `Quick test_rng_bad_bound;
    Alcotest.test_case "rng float bounds" `Quick test_rng_float_bounds;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng gaussian moments" `Quick test_rng_gaussian_moments;
    Alcotest.test_case "graph topo" `Quick test_graph_topo;
    Alcotest.test_case "graph cycle" `Quick test_graph_cycle;
    Alcotest.test_case "graph components" `Quick test_graph_components;
    Alcotest.test_case "graph longest path" `Quick test_graph_longest_path;
    Alcotest.test_case "graph reachable" `Quick test_graph_reachable;
    Alcotest.test_case "graph bad edge" `Quick test_graph_bad_edge;
    Alcotest.test_case "vec push/get" `Quick test_vec_push_get;
    Alcotest.test_case "vec set" `Quick test_vec_set;
    Alcotest.test_case "vec bounds" `Quick test_vec_bounds;
    Alcotest.test_case "vec fold" `Quick test_vec_fold;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table arity" `Quick test_table_arity;
    Alcotest.test_case "pool matches sequential" `Quick test_pool_matches_sequential;
    Alcotest.test_case "pool mapi" `Quick test_pool_mapi;
    Alcotest.test_case "pool map_list" `Quick test_pool_map_list;
    Alcotest.test_case "pool iter" `Quick test_pool_iter;
    Alcotest.test_case "pool exception" `Quick test_pool_exception;
    Alcotest.test_case "pool nested" `Quick test_pool_nested;
    Alcotest.test_case "pool bad jobs" `Quick test_pool_bad_jobs;
    Alcotest.test_case "pool parse jobs" `Quick test_pool_parse_jobs;
    Alcotest.test_case "pool malformed env" `Quick test_pool_env_malformed_falls_back;
    Alcotest.test_case "pool reuses workers" `Quick
      test_pool_reuses_workers_across_batches;
  ]
  @ qsuite
      [
        prop_smoothing_reduces_variation;
        prop_percentile_bounds;
        prop_topo_respects_edges;
        prop_pool_matches_map;
      ]
