(* Explorer tests: the target-frequency search must converge on
   synthetic achieved-vs-target curves and keep its bracket invariant
   (lo never decreases, hi never increases, lo <= hi); the best point
   is the best *achieved* probe, never thrown away for the converged
   target; the Pareto winner is never dominated (qcheck property on
   the pure [Front] module); and a real [run_design] over a Table-1
   benchmark must reuse the session (elaborate = 1 across every
   configuration and probe), beat-or-match the static recipe, and pick
   the same winner at any job count. *)

module Search = Hlsb_explore.Search
module Explore = Hlsb_explore.Explore
module Experiments = Hlsb_explore.Experiments
module Pipeline = Core.Pipeline
module Suite = Hlsb_designs.Suite
module Spec = Hlsb_designs.Spec

(* A plausible device curve: achieved tracks the target up to a
   capacity, then degrades as over-targeting splits paths badly. *)
let capacity_curve cap t = if t <= cap then t else cap *. cap /. t

let test_search_converges () =
  let out = Search.run ~t0:300. ~tol:0.02 ~max_probes:20 (capacity_curve 400.) in
  Alcotest.(check bool) "converged in budget" true out.Search.o_converged;
  Alcotest.(check bool)
    (Printf.sprintf "best %.1f near capacity" out.Search.o_best_achieved)
    true
    (out.Search.o_best_achieved >= 390. && out.Search.o_best_achieved <= 402.)

let test_search_below_t0 () =
  (* Even the starting target is missed: the achieved value bounds the
     bracket from below and the search walks down, not up. *)
  let out = Search.run ~t0:300. ~max_probes:12 (fun _ -> 200.) in
  Alcotest.(check (float 1e-9)) "best is the flat curve" 200.
    out.Search.o_best_achieved;
  List.iter
    (fun (p : Search.probe) ->
      Alcotest.(check bool) "never probes above t0" true (p.p_target <= 300.))
    out.Search.o_probes

let synthetic_oracles =
  [
    ("plateau", capacity_curve 400.);
    ("low plateau", capacity_curve 180.);
    ("flat below t0", fun _ -> 200.);
    ("flat above t0", fun _ -> 800.);
    ("bump", fun t -> if t < 350. then 340. else 300.);
    ("linear loss", fun t -> 0.9 *. t);
  ]

let test_bracket_monotone () =
  List.iter
    (fun (name, oracle) ->
      let out = Search.run ~max_probes:10 oracle in
      let rec walk = function
        | (lo, hi) :: ((lo', hi') :: _ as rest) ->
          Alcotest.(check bool) (name ^ ": lo <= hi") true (lo <= hi);
          Alcotest.(check bool) (name ^ ": lo never decreases") true (lo' >= lo);
          Alcotest.(check bool) (name ^ ": hi never increases") true (hi' <= hi);
          walk rest
        | [ (lo, hi) ] -> Alcotest.(check bool) (name ^ ": lo <= hi") true (lo <= hi)
        | [] -> ()
      in
      walk out.Search.o_brackets)
    synthetic_oracles

let test_best_is_max_probe () =
  List.iter
    (fun (name, oracle) ->
      let out = Search.run ~max_probes:10 oracle in
      let max_achieved =
        List.fold_left
          (fun acc (p : Search.probe) -> Float.max acc p.p_achieved)
          neg_infinity out.Search.o_probes
      in
      Alcotest.(check (float 1e-9)) (name ^ ": best = max achieved")
        max_achieved out.Search.o_best_achieved;
      Alcotest.(check bool) (name ^ ": best target was probed") true
        (List.exists
           (fun (p : Search.probe) ->
             p.p_target = out.Search.o_best_target
             && p.p_achieved = out.Search.o_best_achieved)
           out.Search.o_probes))
    synthetic_oracles

let test_probe_budget () =
  List.iter
    (fun (name, oracle) ->
      List.iter
        (fun budget ->
          let out = Search.run ~max_probes:budget oracle in
          let n = List.length out.Search.o_probes in
          Alcotest.(check bool)
            (Printf.sprintf "%s: 1 <= %d probes <= %d" name n budget)
            true
            (n >= 1 && n <= budget))
        [ 1; 2; 5 ])
    synthetic_oracles

(* ---------------- the Pareto front ---------------- *)

let point i (fmax, area, cost) =
  {
    Explore.Front.pt_label = Printf.sprintf "cfg%d" i;
    pt_fmax = float_of_int (fmax : int);
    pt_area = float_of_int (area : int);
    pt_cost = cost;
  }

let prop_winner_never_dominated =
  QCheck.Test.make ~count:500 ~name:"pareto winner is never dominated"
    QCheck.(list_of_size Gen.(int_range 1 12)
              (triple (int_bound 500) (int_bound 100) (int_bound 10)))
    (fun raw ->
      let pts = List.mapi point raw in
      match Explore.Front.winner pts with
      | None -> false (* non-empty input must have a winner *)
      | Some w ->
        List.for_all (fun p -> not (Explore.Front.dominates p w)) pts
        && List.exists
             (fun p -> p.Explore.Front.pt_label = w.Explore.Front.pt_label)
             (Explore.Front.front pts))

let prop_front_covers =
  QCheck.Test.make ~count:500
    ~name:"every pruned point is dominated by a front point"
    QCheck.(list_of_size Gen.(int_range 0 12)
              (triple (int_bound 500) (int_bound 100) (int_bound 10)))
    (fun raw ->
      let pts = List.mapi point raw in
      let front = Explore.Front.front pts in
      List.for_all
        (fun p ->
          List.exists
            (fun f -> f.Explore.Front.pt_label = p.Explore.Front.pt_label)
            front
          || List.exists (fun f -> Explore.Front.dominates f p) front)
        pts)

let test_front_drops_dominated () =
  let pts =
    List.mapi point [ (400, 50, 5); (380, 60, 5); (400, 40, 5); (250, 90, 9) ]
  in
  let front = Explore.Front.front pts in
  Alcotest.(check (list string)) "only the undominated survive"
    [ "cfg2" ]
    (List.map (fun p -> p.Explore.Front.pt_label) front);
  match Explore.Front.winner pts with
  | None -> Alcotest.fail "winner expected"
  | Some w -> Alcotest.(check string) "winner" "cfg2" w.Explore.Front.pt_label

(* ---------------- real designs ---------------- *)

let vec = "Vector Arithmetic"

let spec_exn name =
  match Suite.find name with
  | Some s -> s
  | None -> Alcotest.fail ("missing suite design " ^ name)

let test_session_reuse_and_floor () =
  let s = spec_exn vec in
  let session = Pipeline.of_spec s in
  let rp =
    Explore.run_design ~budget:3 ~max_probes:3 session ~name:s.Spec.sp_name
  in
  Alcotest.(check int) "one elaboration across all configs" 1
    (Option.value ~default:0 (List.assoc_opt "elaborate" rp.Explore.ep_stage_runs));
  Alcotest.(check int) "all three configurations ran" 3
    (List.length rp.Explore.ep_configs);
  let static = rp.Explore.ep_static.Pipeline.fr_fmax_mhz in
  Alcotest.(check bool)
    (Printf.sprintf "winner %.1f >= static %.1f"
       rp.Explore.ep_winner.Explore.cr_fmax static)
    true
    (rp.Explore.ep_winner.Explore.cr_fmax >= static);
  (* The first configuration is the static point itself: its first
     probe at the default target must reproduce the static compile. *)
  (match rp.Explore.ep_configs with
  | first :: _ ->
    Alcotest.(check (float 1e-9)) "config #1 probe #1 = static compile" static
      (match first.Explore.cr_outcome.Search.o_probes with
      | p :: _ -> p.Search.p_achieved
      | [] -> nan)
  | [] -> Alcotest.fail "no configurations");
  Alcotest.(check bool) "hit rate in (0, 1)" true
    (rp.Explore.ep_hit_rate > 0. && rp.Explore.ep_hit_rate < 1.)

let test_jobs_deterministic () =
  let subset = [ vec; "Stream Buffer" ] in
  let run jobs =
    Experiments.run_explore ~subset ~jobs ~budget:3 ~max_probes:2 ()
    |> List.map (fun (rp : Explore.report) ->
         ( rp.Explore.ep_design,
           rp.Explore.ep_winner.Explore.cr_label,
           rp.Explore.ep_winner.Explore.cr_fmax,
           rp.Explore.ep_probes ))
  in
  let one = run 1 and four = run 4 in
  Alcotest.(check int) "both ran the subset" 2 (List.length one);
  List.iter2
    (fun (d1, l1, f1, p1) (d4, l4, f4, p4) ->
      Alcotest.(check string) "design order" d1 d4;
      Alcotest.(check string) (d1 ^ ": winner label") l1 l4;
      Alcotest.(check (float 1e-9)) (d1 ^ ": winner fmax") f1 f4;
      Alcotest.(check int) (d1 ^ ": probes") p1 p4)
    one four

let suite =
  [
    Alcotest.test_case "search converges on capacity curve" `Quick
      test_search_converges;
    Alcotest.test_case "search walks down when t0 missed" `Quick
      test_search_below_t0;
    Alcotest.test_case "brackets monotone" `Quick test_bracket_monotone;
    Alcotest.test_case "best is max achieved probe" `Quick
      test_best_is_max_probe;
    Alcotest.test_case "probe budget respected" `Quick test_probe_budget;
    Alcotest.test_case "front drops dominated points" `Quick
      test_front_drops_dominated;
    Alcotest.test_case "session reuse and static floor" `Quick
      test_session_reuse_and_floor;
    Alcotest.test_case "winner identical at jobs=1 and jobs=4" `Quick
      test_jobs_deterministic;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_winner_never_dominated; prop_front_covers ]
