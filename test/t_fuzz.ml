(* Fuzz-layer tests: generator well-formedness, oracle smoke campaigns,
   shrinker behavior on a planted bug, and reproducer round-trips. *)

module Gen = Hlsb_fuzz.Gen
module Oracle = Hlsb_fuzz.Oracle
module Shrink = Hlsb_fuzz.Shrink
module Campaign = Hlsb_fuzz.Campaign
module Qbridge = Hlsb_fuzz.Qbridge
module Rng = Hlsb_util.Rng
module Metrics = Hlsb_telemetry.Metrics
module Json = Hlsb_telemetry.Json

let kinds = [ Gen.Kpipe; Gen.Knet; Gen.Kkern; Gen.Ksrc ]

let test_generated_cases_valid () =
  let rng = Rng.create 11 in
  List.iter
    (fun kind ->
      for _ = 1 to 50 do
        let case = Gen.generate kind (Rng.split rng) in
        Alcotest.(check bool)
          (Printf.sprintf "valid: %s" (Gen.to_string case))
          true (Gen.valid case);
        Alcotest.(check bool) "kind matches" true (Gen.kind_of case = kind)
      done)
    kinds

let test_generated_nets_well_formed () =
  let rng = Rng.create 23 in
  for _ = 1 to 40 do
    match Gen.generate Gen.Knet (Rng.split rng) with
    | Gen.Net c ->
      let df = Gen.build_net c in
      Alcotest.(check (list string)) "no structural problems" []
        (List.map
           (fun p -> p.Hlsb_ir.Dataflow.pb_message)
           (Hlsb_ir.Dataflow.problems df))
    | _ -> Alcotest.fail "Knet generated a non-net case"
  done

let test_builders_deterministic () =
  let rng = Rng.create 31 in
  (match Gen.generate Gen.Kkern (Rng.split rng) with
  | Gen.Kern c ->
    let render k =
      Format.asprintf "%a" Hlsb_ir.Dag.pp k.Hlsb_ir.Kernel.dag
    in
    Alcotest.(check string) "same kernel twice"
      (render (Gen.build_kernel c))
      (render (Gen.build_kernel c))
  | _ -> Alcotest.fail "Kkern generated a non-kern case");
  match Gen.generate Gen.Knet (Rng.split rng) with
  | Gen.Net c ->
    Alcotest.(check int) "same channel count twice"
      (Hlsb_ir.Dataflow.n_channels (Gen.build_net c))
      (Hlsb_ir.Dataflow.n_channels (Gen.build_net c))
  | _ -> Alcotest.fail "Knet generated a non-net case"

let test_case_json_roundtrip () =
  let rng = Rng.create 47 in
  List.iter
    (fun kind ->
      for _ = 1 to 20 do
        let case = Gen.generate kind (Rng.split rng) in
        match Gen.of_json (Gen.to_json case) with
        | Ok case' ->
          Alcotest.(check string) "roundtrip" (Gen.to_string case)
            (Gen.to_string case')
        | Error msg -> Alcotest.fail ("of_json failed: " ^ msg)
      done)
    kinds

let test_wide_shape () =
  let wide =
    {
      Gen.kc_seed = 7;
      kc_ops = 5;
      kc_width = 16;
      kc_recipe = 0;
      kc_shape = Gen.Swide;
    }
  in
  (* the wide datapath builds a valid kernel, deterministically *)
  let render c =
    Format.asprintf "%a" Hlsb_ir.Dag.pp (Gen.build_kernel c).Hlsb_ir.Kernel.dag
  in
  Alcotest.(check string) "wide builder deterministic" (render wide) (render wide);
  (* shape survives a JSON roundtrip... *)
  (match Gen.of_json (Gen.to_json (Gen.Kern wide)) with
  | Ok (Gen.Kern c) ->
    Alcotest.(check bool) "shape preserved" true (c.Gen.kc_shape = Gen.Swide)
  | Ok _ -> Alcotest.fail "roundtrip changed the case kind"
  | Error msg -> Alcotest.fail ("of_json failed: " ^ msg));
  (* ...and a legacy record without the field still loads as the DAG shape *)
  let legacy =
    Json.Obj
      [
        ("kind", Json.Str "kern");
        ("seed", Json.Int 7);
        ("ops", Json.Int 5);
        ("width", Json.Int 16);
        ("recipe", Json.Int 0);
      ]
  in
  match Gen.of_json legacy with
  | Ok (Gen.Kern c) ->
    Alcotest.(check bool) "legacy defaults to dag" true
      (c.Gen.kc_shape = Gen.Sdag)
  | Ok _ -> Alcotest.fail "legacy record parsed as a non-kern case"
  | Error msg -> Alcotest.fail ("legacy of_json failed: " ^ msg)

let test_campaign_smoke () =
  let registry = Metrics.create () in
  let report =
    Metrics.with_registry registry (fun () ->
      Campaign.run ~seed:42 ~runs:40 ())
  in
  Alcotest.(check int) "no violations" 0
    (List.length report.Campaign.rp_failures);
  Alcotest.(check int) "all runs counted" 40
    (Metrics.counter_value registry "fuzz.runs");
  Alcotest.(check int) "no failures counted" 0
    (Metrics.counter_value registry "fuzz.failures");
  List.iter
    (fun (o, n) ->
      Alcotest.(check int)
        (Printf.sprintf "per-oracle counter: %s" (Oracle.to_string o))
        n
        (Metrics.counter_value registry
           ("fuzz.runs." ^ Oracle.to_string o)))
    report.Campaign.rp_counts

(* a planted predicate standing in for an oracle: "fails iff pc_n >= 5".
   Greedy shrinking must land exactly on the boundary case. *)
let planted = function
  | Gen.Pipe c when c.Gen.pc_n >= 5 ->
    Oracle.Fail (Printf.sprintf "planted: n = %d >= 5" c.Gen.pc_n)
  | _ -> Oracle.Pass

let test_shrinker_finds_boundary () =
  let start =
    Gen.Pipe
      {
        Gen.pc_stages = 9;
        pc_ctrl_delay = 3;
        pc_gate = Gen.Credit;
        pc_n = 47;
        pc_slack = 6;
        pc_ready_seed = 99;
        pc_ready_duty = 1;
      }
  in
  let minimized, msg, steps = Shrink.minimize ~check:planted start in
  (match minimized with
  | Gen.Pipe c ->
    Alcotest.(check int) "n at the boundary" 5 c.Gen.pc_n;
    Alcotest.(check int) "stages minimal" 1 c.Gen.pc_stages;
    Alcotest.(check int) "ctrl_delay minimal" 0 c.Gen.pc_ctrl_delay;
    Alcotest.(check int) "slack minimal" 0 c.Gen.pc_slack
  | _ -> Alcotest.fail "shrinker changed the case kind");
  Alcotest.(check string) "message from the minimum" "planted: n = 5 >= 5" msg;
  Alcotest.(check bool) "took steps" true (steps > 0)

let test_shrink_candidates_valid_and_smaller () =
  let rng = Rng.create 53 in
  List.iter
    (fun kind ->
      for _ = 1 to 20 do
        let case = Gen.generate kind (Rng.split rng) in
        List.iter
          (fun cand ->
            Alcotest.(check bool) "candidate valid" true (Gen.valid cand);
            Alcotest.(check bool) "candidate differs" true (cand <> case))
          (Shrink.candidates case)
      done)
    kinds

let test_repro_write_and_replay () =
  let registry = Metrics.create () in
  let report =
    Metrics.with_registry registry (fun () ->
      Campaign.run ~seed:7 ~runs:6 ~oracles:[ Oracle.Stall_skid ] ())
  in
  (* seed a synthetic failure so the file path is exercised even though
     the real oracles pass: record a passing case with a fake message *)
  let fl =
    match report.Campaign.rp_failures with
    | fl :: _ -> fl
    | [] ->
      {
        Campaign.fl_oracle = Oracle.Stall_skid;
        fl_seed = 7;
        fl_index = 0;
        fl_original = Gen.generate Gen.Kpipe (Rng.create 7);
        fl_case = Gen.generate Gen.Kpipe (Rng.create 7);
        fl_message = "synthetic";
        fl_shrink_steps = 0;
      }
  in
  let dir = Filename.temp_file "hlsb_fuzz" "" in
  Sys.remove dir;
  let fake = { report with Campaign.rp_failures = [ fl ] } in
  (match Campaign.write_repros ~dir fake with
  | [ path ] -> (
    Alcotest.(check string) "first repro name" "repro-7.json"
      (Filename.basename path);
    match Campaign.replay_file path with
    | Error msg -> Alcotest.fail ("replay_file: " ^ msg)
    | Ok (fl', verdict) ->
      Alcotest.(check string) "case survives the file" (Gen.to_string fl.Campaign.fl_case)
        (Gen.to_string fl'.Campaign.fl_case);
      Alcotest.(check string) "message survives the file" fl.Campaign.fl_message
        fl'.Campaign.fl_message;
      (* the recorded case passes the real oracle (no live bug) *)
      Alcotest.(check bool) "replay verdict is Pass" true
        (verdict = Oracle.Pass))
  | paths ->
    Alcotest.failf "expected exactly one repro file, got %d"
      (List.length paths));
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_failure_json_roundtrip () =
  let fl =
    {
      Campaign.fl_oracle = Oracle.Network;
      fl_seed = 3;
      fl_index = 17;
      fl_original = Gen.generate Gen.Knet (Rng.create 3);
      fl_case = Gen.generate Gen.Knet (Rng.create 4);
      fl_message = "streams diverged";
      fl_shrink_steps = 9;
    }
  in
  match Campaign.failure_of_json (Campaign.failure_to_json fl) with
  | Error msg -> Alcotest.fail msg
  | Ok fl' ->
    Alcotest.(check bool) "oracle" true
      (fl'.Campaign.fl_oracle = Oracle.Network);
    Alcotest.(check int) "index" 17 fl'.Campaign.fl_index;
    Alcotest.(check int) "steps" 9 fl'.Campaign.fl_shrink_steps;
    Alcotest.(check string) "original case" (Gen.to_string fl.Campaign.fl_original)
      (Gen.to_string fl'.Campaign.fl_original);
    Alcotest.(check string) "minimized case" (Gen.to_string fl.Campaign.fl_case)
      (Gen.to_string fl'.Campaign.fl_case)

let suite =
  [
    Alcotest.test_case "generated cases valid" `Quick test_generated_cases_valid;
    Alcotest.test_case "generated nets well-formed" `Quick
      test_generated_nets_well_formed;
    Alcotest.test_case "builders deterministic" `Quick test_builders_deterministic;
    Alcotest.test_case "case json roundtrip" `Quick test_case_json_roundtrip;
    Alcotest.test_case "wide kern shape" `Quick test_wide_shape;
    Alcotest.test_case "campaign smoke" `Quick test_campaign_smoke;
    Alcotest.test_case "shrinker finds boundary" `Quick
      test_shrinker_finds_boundary;
    Alcotest.test_case "shrink candidates valid" `Quick
      test_shrink_candidates_valid_and_smaller;
    Alcotest.test_case "repro write and replay" `Quick test_repro_write_and_replay;
    Alcotest.test_case "failure json roundtrip" `Quick
      test_failure_json_roundtrip;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        Qbridge.oracle_test ~count:25 Oracle.Stall_skid;
        Qbridge.oracle_test ~count:25 Oracle.Network;
        Qbridge.oracle_test ~count:10 Oracle.Cache;
        Qbridge.oracle_test ~count:10 Oracle.Jobs;
      ]
