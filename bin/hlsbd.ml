(* hlsbd — the compile daemon and its control CLI.

   Subcommands:
     serve      run the daemon: bind the socket, serve until shutdown
     status     daemon + artifact-store status (direct disk when no daemon)
     gc         evict the store to its byte budget
     shutdown   ask the daemon to exit cleanly

   The daemon end of the `hlsbc --daemon` client mode: one long-running
   process owns the worker pool, the warm pipeline sessions, and the
   content-addressed artifact store, so a repeat compile from any client
   process is a byte-identical store hit. *)

module Daemon = Hlsb_serve.Daemon
module Client = Hlsb_serve.Client
module Protocol = Hlsb_serve.Protocol
module Store = Hlsb_serve.Store
module Json = Hlsb_telemetry.Json
module Metrics = Hlsb_telemetry.Metrics
module Diag = Hlsb_util.Diag
module Pool = Hlsb_util.Pool
module Log = Hlsb_obs.Log
open Cmdliner

let socket_arg =
  Arg.(
    value
    & opt string (Daemon.ambient_socket ())
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix socket the daemon listens on (default: \
           \\$(b,HLSBD_SOCKET), then $(b,.hlsb/hlsbd.sock)).")

let store_arg =
  Arg.(
    value
    & opt string (Store.ambient_root ())
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Artifact store root (default: \\$(b,HLSBD_STORE), then \
           $(b,.hlsb/store)).")

let budget_arg =
  Arg.(
    value
    & opt int (Store.default_budget_bytes / (1024 * 1024))
    & info [ "budget-mb" ] ~docv:"MB"
        ~doc:"Store eviction budget in MiB (default 256).")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains (default: \\$(b,HLSB_JOBS), then core count).")

let print_json j = print_endline (Json.to_string ~minify:false j)

let fail_msg msg =
  Printf.eprintf "hlsbd: %s\n" msg;
  exit 1

let cmd_serve =
  let run socket store budget_mb jobs max_requests no_ledger =
    if jobs > 0 then Pool.set_default_jobs jobs;
    (* Gauges (queue depth, hit rate) need a registry installed for the
       daemon's lifetime; spans stay off unless a collector is added. *)
    Metrics.install (Metrics.create ());
    let t =
      Daemon.create
        ~budget_bytes:(budget_mb * 1024 * 1024)
        ~store_root:store ~ledger:(not no_ledger) ()
    in
    let max_requests =
      if max_requests > 0 then Some max_requests else None
    in
    match Daemon.serve ?max_requests t ~socket with
    | Ok () -> ()
    | Error msg -> fail_msg msg
  in
  let max_requests_arg =
    Arg.(
      value & opt int 0
      & info [ "max-requests" ] ~docv:"N"
          ~doc:"Exit after serving N requests (0 = serve until shutdown).")
  in
  let no_ledger_arg =
    Arg.(
      value & flag
      & info [ "no-ledger" ] ~doc:"Skip the per-request run-ledger records.")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the compile daemon on a Unix socket")
    Term.(
      const run $ socket_arg $ store_arg $ budget_arg $ jobs_arg
      $ max_requests_arg $ no_ledger_arg)

(* status and gc answer even with no daemon running: they fall back to
   operating on the store directory directly, flagged as such. *)
let cmd_status =
  let run socket store =
    match Client.call ~socket Protocol.Status with
    | Ok { Protocol.p_error = None; p_artifact; _ } -> print_string p_artifact
    | Ok { Protocol.p_error = Some d; _ } -> fail_msg (Diag.to_string d)
    | Error _ ->
      let entries, bytes = Store.disk_usage ~root:store in
      print_json
        (Json.Obj
           [
             ("schema", Json.Str "hlsbd-status/1");
             ("daemon", Json.Bool false);
             ( "store",
               Json.Obj
                 [
                   ("root", Json.Str store);
                   ("entries", Json.Int entries);
                   ("bytes", Json.Int bytes);
                 ] );
           ])
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:"Daemon and artifact-store status (disk figures when no daemon)")
    Term.(const run $ socket_arg $ store_arg)

let cmd_gc =
  let run socket store budget_mb =
    match Client.call ~socket Protocol.Gc with
    | Ok { Protocol.p_error = None; p_artifact; _ } -> print_string p_artifact
    | Ok { Protocol.p_error = Some d; _ } -> fail_msg (Diag.to_string d)
    | Error _ ->
      let t =
        Store.open_ ~budget_bytes:(budget_mb * 1024 * 1024) ~root:store ()
      in
      let evicted = Store.gc t in
      print_json
        (Json.Obj
           [
             ("schema", Json.Str "hlsbd-gc/1");
             ("daemon", Json.Bool false);
             ("evicted", Json.Int evicted);
           ])
  in
  Cmd.v
    (Cmd.info "gc" ~doc:"Evict the artifact store down to its byte budget")
    Term.(const run $ socket_arg $ store_arg $ budget_arg)

let cmd_shutdown =
  let run socket =
    match Client.call ~socket Protocol.Shutdown with
    | Ok { Protocol.p_error = None; _ } -> Log.info "hlsbd: shutdown requested"
    | Ok { Protocol.p_error = Some d; _ } -> fail_msg (Diag.to_string d)
    | Error msg -> fail_msg msg
  in
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Ask the daemon to exit cleanly")
    Term.(const run $ socket_arg)

let () =
  let info =
    Cmd.info "hlsbd" ~version:"1.0.0"
      ~doc:"Compile daemon with a persistent content-addressed artifact store"
  in
  exit (Cmd.eval (Cmd.group info [ cmd_serve; cmd_status; cmd_gc; cmd_shutdown ]))
