(* hlsbc — command-line front end for the broadcast-aware HLS flow.

   Subcommands:
     list                     benchmark designs and devices
     passes                   stages of the compile pipeline
     classify  DESIGN         source-level broadcast report (section 3)
     compile   DESIGN         compile under a recipe, print Fmax/resources
                              (--dump-after STAGE, --explain)
     explore                  search-driven Fmax auto-tuner over recipes x
                              transform plans x register injection
     profile   DESIGN         compile with telemetry: spans + metrics
     path      DESIGN         critical path under a recipe
     schedule  DESIGN         schedule report of the design's first kernel
     calibrate                warm / inspect / clear the calibration cache
     obs                      run ledger: list | report | diff | regress | prom
     table1|table2|table3     regenerate the paper's tables
     fig9|fig15|fig16|fig17|fig19   regenerate the paper's figures
     ablation                 design-choice ablations *)

module Experiments = Core.Experiments
module Pipeline = Core.Pipeline
module Explore = Hlsb_explore.Explore
module Explore_driver = Hlsb_explore.Experiments
module Diag = Hlsb_util.Diag
module Pool = Hlsb_util.Pool
module Calibrate = Hlsb_delay.Calibrate
module Cal_cache = Hlsb_delay.Cal_cache
module Style = Hlsb_ctrl.Style
module Spec = Hlsb_designs.Spec
module Timing = Hlsb_physical.Timing
module Netlist = Hlsb_netlist.Netlist
module Trace = Hlsb_telemetry.Trace
module Metrics = Hlsb_telemetry.Metrics
module Json = Hlsb_telemetry.Json
module Log = Hlsb_obs.Log
module Serve_client = Hlsb_serve.Client
module Serve_protocol = Hlsb_serve.Protocol
module Ledger = Hlsb_obs.Ledger
module Obs_report = Hlsb_obs.Report
module Prom = Hlsb_obs.Prom
open Cmdliner

(* Designs can be named exactly ("Vector Arithmetic") or in a relaxed
   form: case-insensitive with spaces/dashes/underscores ignored, and a
   unique prefix suffices ("vector-arithmetic", "vector_arith", "lstm"). *)
let normalize name =
  String.to_seq name
  |> Seq.filter_map (fun c ->
       match c with
       | 'A' .. 'Z' -> Some (Char.lowercase_ascii c)
       | 'a' .. 'z' | '0' .. '9' -> Some c
       | _ -> None)
  |> String.of_seq

let find_design name =
  let exact = Hlsb_designs.Suite.find name in
  let relaxed () =
    let n = normalize name in
    let matches p =
      List.filter (fun s -> p (normalize s.Spec.sp_name)) Hlsb_designs.Suite.all
    in
    match matches (String.equal n) with
    | [ s ] -> Some s
    | _ -> (
      match matches (fun cand -> String.starts_with ~prefix:n cand) with
      | [ s ] when n <> "" -> Some s
      | _ -> None)
  in
  match if exact <> None then exact else relaxed () with
  | Some s -> s
  | None ->
    let names =
      Hlsb_designs.Suite.all
      |> List.map (fun s -> "  " ^ s.Spec.sp_name)
      |> String.concat "\n"
    in
    Printf.eprintf "unknown design %S; available:\n%s\n" name names;
    exit 1

(* The one recipe-name parser, shared with explore/cc/fuzz via
   [Style.of_string]; unknown names carry a structured diagnostic. *)
let recipe_of s =
  match Style.of_string s with
  | Ok r -> r
  | Error d ->
    Printf.eprintf "%s\n" (Diag.to_string d);
    exit 1

let design_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DESIGN")

let recipe_arg =
  Arg.(
    value
    & opt string "optimized"
    & info [ "r"; "recipe" ] ~docv:"RECIPE"
        ~doc:(String.concat " | " Style.names))

(* Shared --jobs term: a positive value overrides HLSB_JOBS for the whole
   process (characterization fan-out and parallel experiment drivers). *)
let jobs_term =
  let arg =
    Arg.(
      value
      & opt int 0
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for parallel characterization (default: \
             \\$(b,HLSB_JOBS), then the core count).")
  in
  Term.(const (fun n -> if n > 0 then Pool.set_default_jobs n) $ arg)

(* Shared --log-level term: overrides HLSB_LOG for this invocation. The
   full spec grammar is accepted, so "--log-level debug,json" switches
   both the threshold and the record format. *)
let log_term =
  let arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:
            "Structured-log threshold: debug | info | warn | error | off, \
             optionally with a format (text | json), comma-separated \
             (default: \\$(b,HLSB_LOG), then warn,text).")
  in
  let apply = function
    | None -> ()
    | Some s -> (
      match Log.parse_spec s with
      | Ok (lvl, fmt) ->
        Option.iter Log.set_level lvl;
        Option.iter Log.set_format fmt
      | Error msg ->
        Printf.eprintf "--log-level: %s\n" msg;
        exit 2)
  in
  Term.(const apply $ arg)

let common_term = Term.(const (fun () () -> ()) $ jobs_term $ log_term)

let cmd_list =
  let run () =
    print_endline "benchmark designs (Table 1):";
    List.iter
      (fun (s : Spec.t) ->
        Printf.printf "  %-20s %-22s %s\n" s.Spec.sp_name s.Spec.sp_broadcast
          s.Spec.sp_device.Hlsb_device.Device.board)
      Hlsb_designs.Suite.all;
    print_endline "\ndevices:";
    List.iter
      (fun d -> Format.printf "  %a@." Hlsb_device.Device.pp d)
      Hlsb_device.Device.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmark designs and devices")
    Term.(const run $ const ())

let cmd_classify =
  let run name =
    let s = find_design name in
    print_string
      (Core.Classify.to_string
         (Core.Classify.analyze ~device:s.Spec.sp_device (s.Spec.sp_build ())))
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Source-level broadcast classification")
    Term.(const run $ design_arg)

let compile name recipe =
  let s = find_design name in
  Core.Flow.compile_spec ~recipe:(recipe_of recipe) s

let write_text ~path text =
  match open_out path with
  | exception Sys_error msg ->
    Printf.eprintf "cannot write output file: %s\n" msg;
    exit 1
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc text)

(* Structured diagnostics (stage + offending entity) render through the
   event log (so --log-level json gives a machine-readable failure
   record) with a non-zero exit, instead of an Invalid_argument
   backtrace. *)
let fail_diag d =
  Log.error "%s" (Diag.to_string d);
  exit 1

(* ---- hlsbd client mode ---------------------------------------------- *)

(* Daemon mode engages on --daemon or whenever HLSBD_SOCKET names a
   socket. Output discipline: the artifact bytes (and nothing else) go
   to stdout, hit/miss routing to stderr — so two invocations of the
   same compile can be compared byte for byte, daemon or not. *)
let daemon_env_set () =
  match Sys.getenv_opt Hlsb_serve.Daemon.socket_env_var with
  | Some s -> s <> ""
  | None -> false

(* Send the verb to the daemon; when no daemon answers, fall back to the
   in-process thunk, which must print byte-identical artifact bytes. *)
let daemon_or_fallback verb fallback =
  match Serve_client.call verb with
  | Ok resp -> (
    match resp.Serve_protocol.p_error with
    | Some d -> fail_diag d
    | None ->
      Printf.eprintf "[hlsbd] %s %s key=%s\n%!"
        (if resp.Serve_protocol.p_hit then "hit" else "miss")
        (Serve_protocol.verb_name verb)
        resp.Serve_protocol.p_key;
      print_string resp.Serve_protocol.p_artifact)
  | Error msg ->
    Log.info "hlsbd unavailable (%s); compiling in-process" msg;
    Printf.eprintf "[hlsbd] in-process fallback\n%!";
    fallback ()

(* The in-process spelling of the daemon's compile artifact: the same
   result record, rendered by the same encoder, newline-terminated. *)
let print_result_artifact r =
  print_string (Json.to_string ~minify:false (Core.Flow.result_to_json r) ^ "\n")

let daemon_arg =
  Arg.(
    value & flag
    & info [ "daemon" ]
        ~doc:
          "Route the compile through a running $(b,hlsbd) daemon \
           (\\$(b,HLSBD_SOCKET), default $(b,.hlsb/hlsbd.sock)): the \
           artifact-record JSON is printed to stdout, served from the \
           daemon's content-addressed store when it has the bytes. Falls \
           back to an in-process compile (same bytes) when no daemon \
           answers. Implied by setting \\$(b,HLSBD_SOCKET).")

(* ---- run-ledger assembly shared by compile / cc / profile / fuzz ---- *)

let stage_ms_of_session session =
  List.map
    (fun (r : Pipeline.stage_record) ->
      {
        Ledger.st_name = Pipeline.stage_name r.Pipeline.sr_stage;
        st_status = Pipeline.status_label r.Pipeline.sr_status;
        st_ms = r.Pipeline.sr_ms;
      })
    (Pipeline.last_run session)

let cache_counters (snap : Metrics.snapshot) =
  List.filter
    (fun (name, _) ->
      String.starts_with ~prefix:"pipeline.cache" name
      || String.starts_with ~prefix:"calibrate." name)
    snap.Metrics.sn_counters

(* Ledger failures must never take a compile down: log and move on. *)
let append_ledger record =
  match Ledger.append record with
  | Ok path ->
    Log.debug ~attrs:[ ("run", Json.Str record.Ledger.r_id) ]
      "appended run record to %s" path
  | Error msg -> Log.warn "run ledger: %s" msg

let stage_of_string s =
  match Pipeline.stage_of_name (String.lowercase_ascii (String.trim s)) with
  | Some st -> st
  | None ->
    Printf.eprintf "unknown stage %S (stages: %s)\n" s
      (String.concat " | " (List.map Pipeline.stage_name Pipeline.stages));
    exit 1

let sanitize_filename name =
  String.map
    (fun c ->
      match c with
      | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    name

let cmd_passes =
  let run () =
    print_endline "compile pipeline stages (in order):";
    List.iter
      (fun st ->
        Printf.printf "  %-10s .%-4s  %s\n" (Pipeline.stage_name st)
          (Pipeline.dump_extension st) (Pipeline.describe st))
      Pipeline.stages;
    print_endline
      "\ndump any stage's artifact with: hlsbc compile DESIGN --dump-after STAGE"
  in
  Cmd.v
    (Cmd.info "passes"
       ~doc:"List the compile pipeline's stages and their dump formats")
    Term.(const run $ const ())

let cmd_compile =
  let run () name recipe json dump_after explain daemon =
    let s = find_design name in
    let recipe = recipe_of recipe in
    if daemon || daemon_env_set () then
      daemon_or_fallback
        (Serve_protocol.Compile
           {
             Serve_protocol.cp_design = s.Spec.sp_name;
             cp_recipe = recipe;
             cp_target_mhz = None;
             cp_inject = None;
           })
        (fun () ->
          let session = Pipeline.of_spec s in
          match Pipeline.run session ~recipe with
          | Error d -> fail_diag d
          | Ok r -> print_result_artifact r)
    else
    let session = Pipeline.of_spec s in
    (* The ledger wants the full metrics snapshot, which needs a registry
       installed around the compile. With HLSB_LEDGER=off none of this
       runs and the compile path is exactly what it was. *)
    let registry = if Ledger.enabled () then Some (Metrics.create ()) else None in
    let outcome =
      match registry with
      | Some reg ->
        Metrics.with_registry reg (fun () -> Pipeline.run session ~recipe)
      | None -> Pipeline.run session ~recipe
    in
    match outcome with
    | Error d -> fail_diag d
    | Ok r ->
      let record =
        match registry with
        | None -> None
        | Some reg ->
          let snap = Metrics.snapshot reg in
          let record =
            Ledger.make
              ~device:s.Spec.sp_device.Hlsb_device.Device.name
              ~fingerprint:(Cal_cache.fingerprint s.Spec.sp_device)
              ~recipe:(Style.label recipe)
              ~stages:(stage_ms_of_session session)
              ~results:[ Core.Flow.result_to_json r ]
              ~cache:(cache_counters snap)
              ~metrics:(Metrics.to_json snap) ~cmd:"compile"
              ~label:s.Spec.sp_name ()
          in
          append_ledger record;
          Some record
      in
      if json then begin
        let base = Core.Flow.result_to_json r in
        let full =
          match (base, record) with
          | Json.Obj fields, Some rc ->
            Json.Obj (fields @ [ ("run", Ledger.to_json rc) ])
          | _ -> base
        in
        print_endline (Json.to_string ~minify:false full)
      end
      else print_endline (Core.Flow.summary r);
      (match dump_after with
      | None -> ()
      | Some stage_s -> (
        let stage = stage_of_string stage_s in
        match Pipeline.dump_after session ~recipe stage with
        | Error d -> fail_diag d
        | Ok text ->
          let path =
            Printf.sprintf "%s.%s.dump.%s"
              (sanitize_filename s.Spec.sp_name)
              (Pipeline.stage_name stage)
              (Pipeline.dump_extension stage)
          in
          write_text ~path text;
          Printf.printf "wrote %s\n" path));
      if explain then begin
        print_newline ();
        print_string (Pipeline.explain session)
      end
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the result record as JSON instead of text.")
  in
  let dump_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-after" ] ~docv:"STAGE"
          ~doc:
            "Write the named stage's artifact (dataflow/schedule/netlist/\
             timing dump) to $(b,DESIGN.STAGE.dump.EXT) in the current \
             directory. See $(b,hlsbc passes) for the stage list.")
  in
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "After compiling, print the per-stage table of the run (ran / \
             cached / skipped, wall-clock) and any diagnostics.")
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a benchmark and report Fmax/resources")
    Term.(
      const run $ common_term $ design_arg $ recipe_arg $ json_arg $ dump_arg
      $ explain_arg $ daemon_arg)

let cmd_profile =
  let run () name recipe trace_out metrics_out quiet =
    let s = find_design name in
    let trace = Trace.create () in
    let registry = Metrics.create () in
    let session = Pipeline.of_spec s in
    let r =
      Trace.with_collector trace (fun () ->
        Metrics.with_registry registry (fun () ->
          let r =
            match Pipeline.run session ~recipe:(recipe_of recipe) with
            | Ok r -> r
            | Error d -> fail_diag d
          in
          (* Drive the behavioral skid model under bursty back-pressure so
             the profile also carries the §4.3 occupancy series. *)
          let stages =
            List.fold_left
              (fun acc (k : Hlsb_rtlgen.Design.kernel_info) ->
                max acc k.Hlsb_rtlgen.Design.ki_depth)
              1 r.Core.Flow.fr_design.Hlsb_rtlgen.Design.kernels
            |> min 64
          in
          let skid_depth =
            Hlsb_ctrl.Skid.required_depth ~pipeline_depth:stages ()
          in
          Trace.with_span "occupancy_sim"
            ~attrs:[ ("stages", Json.Int stages) ]
            (fun () ->
              ignore
                (Hlsb_sim.Pipeline.run_skid ~stages ~skid_depth ~ctrl_delay:0
                   ~gate:Hlsb_sim.Pipeline.Gate_empty
                   ~inputs:(List.init 256 Fun.id)
                   ~ready:(fun c -> c mod 7 <> 0 && c mod 13 <> 1)
                   ~f:Fun.id));
          r))
    in
    let snap = Metrics.snapshot registry in
    (* Profile is inherently instrumented, so the record is assembled
       regardless; HLSB_LEDGER only controls whether it is persisted.
       The --metrics file is that same record — one format everywhere
       (satellite requirement). *)
    let record =
      Ledger.make
        ~device:s.Spec.sp_device.Hlsb_device.Device.name
        ~fingerprint:(Cal_cache.fingerprint s.Spec.sp_device)
        ~recipe:(Style.label (recipe_of recipe))
        ~stages:(stage_ms_of_session session)
        ~results:[ Core.Flow.result_to_json r ]
        ~cache:(cache_counters snap)
        ~metrics:(Metrics.to_json snap) ~cmd:"profile" ~label:s.Spec.sp_name ()
    in
    if Ledger.enabled () then append_ledger record;
    if not quiet then begin
      print_endline (Core.Flow.summary r);
      print_newline ();
      print_endline "spans:";
      print_string (Trace.render trace);
      print_newline ();
      print_string (Metrics.render snap)
    end;
    (match trace_out with
    | None -> ()
    | Some path ->
      write_text ~path
        (Json.to_string
           (Trace.to_chrome_json ~process_name:("hlsbc " ^ s.Spec.sp_name) trace));
      if not quiet then
        Printf.printf "wrote trace to %s (load in chrome://tracing or Perfetto)\n"
          path);
    match metrics_out with
    | None -> ()
    | Some path ->
      write_text ~path
        (Json.to_string ~minify:false (Ledger.to_json record) ^ "\n");
      if not quiet then Printf.printf "wrote run record to %s\n" path
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"OUT.json"
          ~doc:"Write a Chrome trace_event JSON profile to $(docv).")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"OUT.json"
          ~doc:
            "Write the hlsb-run/1 record (stage timings, compile result, \
             full metrics snapshot) to $(docv) — the same record the run \
             ledger receives.")
  in
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "q"; "quiet" ] ~doc:"Suppress the summary table and span tree.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Compile a benchmark with telemetry enabled: nested spans for \
          elaborate/schedule/lower/timing plus broadcast/occupancy metrics")
    Term.(
      const run $ common_term $ design_arg $ recipe_arg $ trace_arg $ metrics_arg
      $ quiet_arg)

let cmd_path =
  let run name recipe =
    let r = compile name recipe in
    print_endline (Core.Flow.summary r);
    let nl = r.Core.Flow.fr_design.Hlsb_rtlgen.Design.netlist in
    List.iter
      (fun (st : Timing.path_step) ->
        Printf.printf "  %-34s arrival %7.3f ns  %s\n" st.Timing.ps_cell_name
          st.Timing.ps_arrival
          (match st.Timing.ps_via_net with
          | None -> ""
          | Some n ->
            let net = Netlist.net nl n in
            Printf.sprintf "via %s (fanout %d)" net.Netlist.n_name
              (Array.length net.Netlist.n_sinks)))
      r.Core.Flow.fr_timing.Timing.path
  in
  Cmd.v
    (Cmd.info "path" ~doc:"Show the critical path of a compiled benchmark")
    Term.(const run $ design_arg $ recipe_arg)

let cmd_schedule =
  let run name recipe =
    let s = find_design name in
    let df = s.Spec.sp_build () in
    let kernel =
      let rec first i =
        if i >= Hlsb_ir.Dataflow.n_processes df then None
        else
          match (Hlsb_ir.Dataflow.process df i).Hlsb_ir.Dataflow.p_kernel with
          | Some k -> Some k
          | None -> first (i + 1)
      in
      first 0
    in
    match kernel with
    | None -> print_endline "design has no kernels"
    | Some k ->
      let mode =
        match (recipe_of recipe).Style.sched with
        | Style.Sched_hls -> Hlsb_sched.Schedule.Baseline
        | Style.Sched_aware ->
          Hlsb_sched.Schedule.Broadcast_aware
            (Hlsb_delay.Calibrate.shared s.Spec.sp_device)
      in
      print_string
        (Hlsb_sched.Report.to_string (Hlsb_sched.Schedule.run mode k))
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Print the schedule report of the first kernel")
    Term.(const run $ design_arg $ recipe_arg)

let cmd_cc =
  let run () file recipe transform dump_after explain daemon =
    let src =
      let ic = open_in file in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let plan =
      match Hlsb_transform.Plan.of_string transform with
      | Ok p -> p
      | Error msg ->
        Printf.eprintf
          "%s (plan grammar: unroll=N | unroll=LOOP:N | partition=cyclic:N | \
           partition=cyclic:ARRAY:N | fission[=LOOP] | fusion[=LOOP] | \
           stream[=ARRAY] | pragmas | channel-reuse, ';'-separated)\n"
          msg;
        exit 1
    in
    if daemon || daemon_env_set () then
      let name = Filename.remove_extension (Filename.basename file) in
      daemon_or_fallback
        (Serve_protocol.Cc
           {
             Serve_protocol.cc_name = name;
             cc_source = src;
             cc_recipe = recipe_of recipe;
             cc_plan = plan;
           })
        (fun () ->
          match Hlsb_frontend.Frontend.parse src with
          | Error e ->
            Format.eprintf "%s: %a@." file Hlsb_frontend.Frontend.pp_error e;
            exit 1
          | Ok program -> (
            let device = Hlsb_device.Device.ultrascale_plus in
            let session = Pipeline.of_program ~device ~name program in
            match Pipeline.run ~plan session ~recipe:(recipe_of recipe) with
            | Error d -> fail_diag d
            | Ok r -> print_result_artifact r))
    else
    match Hlsb_frontend.Frontend.parse src with
    | Error e ->
      Format.eprintf "%s: %a@." file Hlsb_frontend.Frontend.pp_error e;
      exit 1
    | Ok program -> (
      let device = Hlsb_device.Device.ultrascale_plus in
      let name = Filename.remove_extension (Filename.basename file) in
      let session = Pipeline.of_program ~device ~name program in
      (match Pipeline.classify_report ~plan session with
      | report -> print_string (Core.Classify.to_string report)
      | exception Diag.Diagnostic d -> fail_diag d);
      let recipe = recipe_of recipe in
      let registry =
        if Ledger.enabled () then Some (Metrics.create ()) else None
      in
      let outcome =
        match registry with
        | Some reg ->
          Metrics.with_registry reg (fun () ->
            Pipeline.run ~plan session ~recipe)
        | None -> Pipeline.run ~plan session ~recipe
      in
      match outcome with
      | Error d -> fail_diag d
      | Ok r ->
        (match registry with
        | None -> ()
        | Some reg ->
          let label =
            match Hlsb_transform.Plan.to_string plan with
            | "" -> name
            | p -> name ^ " [" ^ p ^ "]"
          in
          let snap = Metrics.snapshot reg in
          append_ledger
            (Ledger.make ~device:device.Hlsb_device.Device.name
               ~fingerprint:(Cal_cache.fingerprint device)
               ~recipe:(Style.label recipe)
               ~stages:(stage_ms_of_session session)
               ~results:[ Core.Flow.result_to_json r ]
               ~cache:(cache_counters snap)
               ~metrics:(Metrics.to_json snap) ~cmd:"cc" ~label ()));
        print_endline (Core.Flow.summary r);
        (match dump_after with
        | None -> ()
        | Some stage_s -> (
          let stage = stage_of_string stage_s in
          match Pipeline.dump_after ~plan session ~recipe stage with
          | Error d -> fail_diag d
          | Ok text ->
            let path =
              Printf.sprintf "%s.%s.dump.%s" (sanitize_filename name)
                (Pipeline.stage_name stage)
                (Pipeline.dump_extension stage)
            in
            write_text ~path text;
            Printf.printf "wrote %s\n" path));
        if explain then begin
          print_newline ();
          print_string (Pipeline.explain session)
        end)
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.c")
  in
  let transform_arg =
    Arg.(
      value & opt string ""
      & info [ "transform" ] ~docv:"PLAN"
          ~doc:
            "Source-to-source transform plan applied before elaboration: \
             ';'-separated items, e.g. \
             $(b,unroll=4;partition=cyclic:4;fission). $(b,channel-reuse) \
             additionally merges duplicate-value channels in the elaborated \
             network. Empty (default) compiles the source as written.")
  in
  let dump_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-after" ] ~docv:"STAGE"
          ~doc:
            "Write the named stage's artifact to \
             $(b,NAME.STAGE.dump.EXT) in the current directory \
             ($(b,transform) dumps the transformed C source). See \
             $(b,hlsbc passes) for the stage list.")
  in
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "After compiling, print the per-stage table of the run (ran / \
             cached / skipped, wall-clock) and any diagnostics.")
  in
  Cmd.v
    (Cmd.info "cc" ~doc:"Compile a C-subset source file through the flow")
    Term.(
      const run $ common_term $ file_arg $ recipe_arg $ transform_arg $ dump_arg
      $ explain_arg $ daemon_arg)

let cmd_emit =
  let run name recipe fmt out =
    let r = compile name recipe in
    let nl = r.Core.Flow.fr_design.Hlsb_rtlgen.Design.netlist in
    let text =
      match fmt with
      | "dot" -> Hlsb_netlist.Export.to_dot nl
      | "verilog" | "v" -> Hlsb_netlist.Export.to_verilog nl
      | f ->
        Printf.eprintf "unknown format %S (dot | verilog)\n" f;
        exit 1
    in
    match out with
    | None -> print_string text
    | Some path ->
      Hlsb_netlist.Export.write_file ~path text;
      Printf.printf "wrote %s\n" path
  in
  let fmt_arg =
    Arg.(value & opt string "dot" & info [ "f"; "format" ] ~docv:"FMT"
           ~doc:"dot | verilog")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH")
  in
  Cmd.v
    (Cmd.info "emit" ~doc:"Export a compiled benchmark's netlist (DOT/Verilog)")
    Term.(const run $ design_arg $ recipe_arg $ fmt_arg $ out_arg)

let cmd_calibrate =
  let warm_ops =
    (* everything the benchmark suite's schedules actually look up *)
    let open Hlsb_ir in
    [
      (Op.Add, Dtype.Int 32);
      (Op.Sub, Dtype.Int 32);
      (Op.Mul, Dtype.Int 32);
      (Op.Fadd, Dtype.Float32);
      (Op.Fmul, Dtype.Float32);
    ]
  in
  let devices_of = function
    | None -> Hlsb_device.Device.all
    | Some name -> (
      match Hlsb_device.Device.find name with
      | Some d -> [ d ]
      | None ->
        Printf.eprintf "unknown device %S; available:\n" name;
        List.iter
          (fun (d : Hlsb_device.Device.t) ->
            Printf.eprintf "  %s\n" d.Hlsb_device.Device.name)
          Hlsb_device.Device.all;
        exit 1)
  in
  let inspect dir =
    Printf.printf "calibration cache: %s\n" dir;
    let paths = Cal_cache.entries ~dir in
    if paths = [] then print_endline "  (empty)"
    else
      List.iter
        (fun path ->
          match
            Cal_cache.summarize ~factor_grid:Calibrate.factor_grid
              ~unit_grid:Calibrate.unit_grid path
          with
          | None -> Printf.printf "  %s: unreadable\n" (Filename.basename path)
          | Some s ->
            Printf.printf "  %s: device %s, schema v%d, %s\n"
              (Filename.basename path) s.Cal_cache.s_device s.Cal_cache.s_schema
              (if not s.Cal_cache.s_valid then "STALE (will re-characterize)"
               else
                 Printf.sprintf "%d op curve(s)%s%s"
                   (List.length s.Cal_cache.s_ops)
                   (if s.Cal_cache.s_has_mem_wr then " + mem write" else "")
                   (if s.Cal_cache.s_has_mem_rd then " + mem read" else ""));
            if s.Cal_cache.s_valid && s.Cal_cache.s_ops <> [] then
              Printf.printf "      ops: %s\n"
                (String.concat ", " s.Cal_cache.s_ops))
        paths
  in
  let run () dir_flag warm clear device =
    let dir =
      match dir_flag with
      | Some d -> Some d
      | None -> Cal_cache.ambient_dir ()
    in
    match dir with
    | None ->
      Printf.eprintf
        "calibration cache disabled (HLSB_CACHE_DIR is empty and no HOME); \
         pass --dir\n";
      exit 1
    | Some dir ->
      if clear then begin
        let n = Cal_cache.clear ~dir in
        Printf.printf "removed %d cache file(s) from %s\n" n dir
      end;
      if warm then
        List.iter
          (fun (d : Hlsb_device.Device.t) ->
            let cal = Calibrate.create ~cache_dir:dir d in
            Printf.printf "warming %s (%d ops + mem curves)...%!"
              d.Hlsb_device.Device.name (List.length warm_ops);
            Calibrate.warm ~ops:warm_ops ~mem:true cal;
            Printf.printf " done\n%!")
          (devices_of device);
      if not (warm || clear) then inspect dir
      else if warm then inspect dir
  in
  let dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Cache directory (default: \\$(b,HLSB_CACHE_DIR), then \
                \\$(b,XDG_CACHE_HOME)/hlsb).")
  in
  let warm_arg =
    Arg.(
      value & flag
      & info [ "warm" ]
          ~doc:"Characterize the standard op and memory curves into the cache.")
  in
  let clear_arg =
    Arg.(value & flag & info [ "clear" ] ~doc:"Remove all cache files.")
  in
  let device_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "d"; "device" ] ~docv:"DEVICE"
          ~doc:"Warm only this device (default: all devices).")
  in
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:
         "Inspect, warm, or clear the persistent calibration cache \
          (post-route delay curves keyed by device fingerprint)")
    Term.(
      const run $ common_term $ dir_arg $ warm_arg $ clear_arg $ device_arg)

let cmd_fuzz =
  let module Campaign = Hlsb_fuzz.Campaign in
  let module Oracle = Hlsb_fuzz.Oracle in
  let module Gen = Hlsb_fuzz.Gen in
  let parse_oracles = function
    | None -> Oracle.all
    | Some spec ->
      String.split_on_char ',' spec
      |> List.filter_map (fun s ->
           let s = String.trim s in
           if s = "" then None else Some s)
      |> List.map (fun s ->
           match Oracle.of_string s with
           | Some o -> o
           | None ->
             Printf.eprintf "unknown oracle %S (%s)\n" s
               (String.concat " | " (List.map Oracle.to_string Oracle.all));
             exit 1)
  in
  let replay path =
    match Campaign.replay_file path with
    | Error msg ->
      Printf.eprintf "cannot replay %s: %s\n" path msg;
      exit 1
    | Ok (fl, verdict) -> (
      Printf.printf "replaying %s\n  oracle: %s\n  case:   %s\n" path
        (Oracle.to_string fl.Campaign.fl_oracle)
        (Gen.to_string fl.Campaign.fl_case);
      match verdict with
      | Oracle.Fail msg ->
        Printf.printf "still FAILS: %s\n" msg;
        exit 1
      | Oracle.Pass ->
        Printf.printf "PASSES: the recorded bug no longer reproduces\n";
        (* recorded message helps relate the fix to the original failure *)
        Printf.printf "  (was: %s)\n" fl.Campaign.fl_message)
  in
  let campaign seed runs oracles out =
    let registry = Metrics.create () in
    let report =
      Metrics.with_registry registry (fun () ->
        Campaign.run ~oracles ~log:print_endline ~seed ~runs ())
    in
    print_string (Campaign.summary report);
    let snap = Metrics.snapshot registry in
    if Ledger.enabled () then
      append_ledger
        (Ledger.make ~cache:(cache_counters snap)
           ~metrics:(Metrics.to_json snap) ~cmd:"fuzz"
           ~label:
             (Printf.sprintf "seed=%d runs=%d failures=%d" seed runs
                (List.length report.Campaign.rp_failures))
           ());
    List.iter
      (fun (name, v) ->
        if String.starts_with ~prefix:"fuzz." name then
          Printf.printf "  %-24s %d\n" name v)
      snap.Metrics.sn_counters;
    if report.Campaign.rp_failures <> [] then begin
      let paths = Campaign.write_repros ~dir:out report in
      List.iter (Printf.printf "wrote reproducer %s\n") paths;
      Printf.printf "replay with: hlsbc fuzz --replay %s\n" (List.hd paths);
      exit 1
    end
  in
  let run () seed runs oracle_spec out replay_path =
    match replay_path with
    | Some path -> replay path
    | None -> campaign seed runs (parse_oracles oracle_spec) out
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed (deterministic).")
  in
  let runs_arg =
    Arg.(
      value & opt int 200
      & info [ "runs" ] ~docv:"N" ~doc:"Number of generated cases.")
  in
  let oracle_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "oracle" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated oracle subset: stall-skid | network | cache | \
             jobs (default: all).")
  in
  let out_arg =
    Arg.(
      value & opt string "fuzz"
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Directory for minimized reproducer files.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE.json"
          ~doc:"Re-run the oracle of a recorded reproducer instead of fuzzing.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random designs checked by cross-layer oracles \
          (stall vs skid, network conservation, compile cache, job-count \
          invariance), with greedy shrinking of failures")
    Term.(
      const run $ common_term $ seed_arg $ runs_arg $ oracle_arg $ out_arg
      $ replay_arg)

(* ---------------- the explore subcommand ---------------- *)

let cmd_explore =
  let run () designs source plans_s budget t0 tol max_probes out =
    let plans =
      match plans_s with
      | None -> []
      | Some s ->
        String.split_on_char ',' s
        |> List.map (fun p ->
             match Hlsb_transform.Plan.of_string (String.trim p) with
             | Ok pl -> pl
             | Error msg ->
               Printf.eprintf "bad plan %S: %s\n" p msg;
               exit 1)
    in
    if plans <> [] && source = None then begin
      Printf.eprintf
        "--plans transforms source, so it needs --source FILE.c (IR-level \
         suite designs explore recipes and register injection only)\n";
      exit 1
    end;
    let registry = Metrics.create () in
    let reports =
      Metrics.with_registry registry (fun () ->
        match source with
        | Some file -> (
          let src =
            let ic = open_in file in
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          match Hlsb_frontend.Frontend.parse src with
          | Error e ->
            Format.eprintf "%s: %a@." file Hlsb_frontend.Frontend.pp_error e;
            exit 1
          | Ok program -> (
            let device = Hlsb_device.Device.ultrascale_plus in
            let name = Filename.remove_extension (Filename.basename file) in
            let session = Pipeline.of_program ~device ~name program in
            match
              Explore.run_design ~budget ~t0 ~tol ~max_probes ~plans session
                ~name
            with
            | rp -> [ rp ]
            | exception Diag.Diagnostic d -> fail_diag d))
        | None -> (
          let subset =
            match designs with
            | None -> None
            | Some s ->
              Some
                (String.split_on_char ',' s
                |> List.filter_map (fun n ->
                     let n = String.trim n in
                     if n = "" then None
                     else Some (find_design n).Spec.sp_name))
          in
          match Explore_driver.run_explore ?subset ~budget ~t0 ~tol ~max_probes () with
          | rps -> rps
          | exception Diag.Diagnostic d -> fail_diag d))
    in
    print_string (Explore_driver.render_explore reports);
    List.iter
      (fun rp ->
        print_newline ();
        print_string (Explore.summary rp))
      reports;
    (match out with
    | None -> ()
    | Some dir ->
      List.iter
        (fun rp ->
          let paths = Explore.write_logs ~dir rp in
          Printf.printf "wrote %d file(s) for %s under %s\n"
            (List.length paths) rp.Explore.ep_design dir)
        reports);
    if Ledger.enabled () then begin
      let snap = Metrics.snapshot registry in
      let stages =
        List.map
          (fun rp ->
            {
              Ledger.st_name = rp.Explore.ep_design;
              st_status = "ran";
              st_ms = rp.Explore.ep_ms;
            })
          reports
      in
      let results =
        List.map
          (fun rp ->
            Pipeline.result_to_json
              rp.Explore.ep_winner.Explore.cr_result)
          reports
      in
      let probes =
        List.fold_left (fun acc rp -> acc + rp.Explore.ep_probes) 0 reports
      in
      append_ledger
        (Ledger.make ~stages ~results ~cache:(cache_counters snap)
           ~metrics:(Metrics.to_json snap) ~cmd:"explore"
           ~label:
             (Printf.sprintf "budget=%d designs=%d probes=%d" budget
                (List.length reports) probes)
           ())
    end
  in
  let designs_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "designs" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated Table-1 designs to explore (relaxed names \
             accepted, see $(b,hlsbc list)); default: all of them.")
  in
  let source_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "source" ] ~docv:"FILE.c"
          ~doc:
            "Explore a C-subset source file instead of suite designs; \
             enables the $(b,--plans) transform axis.")
  in
  let plans_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "plans" ] ~docv:"PLANS"
          ~doc:
            "Comma-separated transform plans to add to the configuration \
             space (each in the $(b,hlsbc cc --transform) grammar; the \
             identity plan is always included). Requires $(b,--source).")
  in
  let budget_arg =
    Arg.(
      value & opt int 8
      & info [ "budget" ] ~docv:"N"
          ~doc:"Most configurations to try per design.")
  in
  let t0_arg =
    Arg.(
      value & opt float 300.
      & info [ "t0" ] ~docv:"MHZ"
          ~doc:
            "Starting target frequency (default 300, the pipeline's static \
             schedule target, so the first probe reproduces the static \
             compile).")
  in
  let tol_arg =
    Arg.(
      value & opt float 0.02
      & info [ "tol" ] ~docv:"FRAC"
          ~doc:"Relative convergence tolerance of the target search.")
  in
  let max_probes_arg =
    Arg.(
      value & opt int 5
      & info [ "max-probes" ] ~docv:"N"
          ~doc:"Most compiles the target search may spend per configuration.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:
            "Write per-configuration $(b,frequency_log/) probe logs and a \
             per-design summary JSON under $(docv).")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Search-driven Fmax auto-tuning: binary-search the target \
          frequency per configuration over recipes x transform plans x \
          register injection, inside one cached compile session per design")
    Term.(
      const run $ common_term $ designs_arg $ source_arg $ plans_arg
      $ budget_arg $ t0_arg $ tol_arg $ max_probes_arg $ out_arg)

(* ---------------- the obs subcommand family ---------------- *)

let cmd_obs =
  let ledger_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger" ] ~docv:"PATH"
          ~doc:
            "Ledger file to read (default: \\$(b,HLSB_LEDGER), then \
             .hlsb/ledger.jsonl).")
  in
  let ledger_path flag =
    match flag with
    | Some p -> p
    | None -> Option.value ~default:Ledger.default_path (Ledger.ambient_path ())
  in
  let usage msg =
    Printf.eprintf "%s\n" msg;
    exit 2
  in
  let load_runs path =
    match Ledger.load ~path with
    | Error msg -> usage msg
    | Ok [] -> usage (Printf.sprintf "ledger %s has no runs" path)
    | Ok runs -> runs
  in
  let resolve_run runs ref_ =
    match Ledger.resolve runs ref_ with Ok r -> r | Error msg -> usage msg
  in
  (* A REF can also name a file — a JSONL ledger or a one-record JSON
     file (ci/baseline-ledger.json); its newest record wins. *)
  let run_of_ref ~runs ref_ =
    if Sys.file_exists ref_ then
      match Ledger.load ~path:ref_ with
      | Ok (_ :: _ as rs) -> List.nth rs (List.length rs - 1)
      | Ok [] -> usage (Printf.sprintf "%s holds no hlsb-run/1 records" ref_)
      | Error msg -> usage msg
    else resolve_run runs ref_
  in
  let run_arg =
    Arg.(
      value & pos 0 string "last"
      & info [] ~docv:"RUN"
          ~doc:
            "last | a 1-based index from the oldest (negative counts from \
             the newest) | a run-id prefix")
  in
  let cmd_report =
    let run ledger ref_ top =
      let runs = load_runs (ledger_path ledger) in
      print_string (Obs_report.report ~top (run_of_ref ~runs ref_))
    in
    let top_arg =
      Arg.(
        value & opt int 12
        & info [ "top" ] ~docv:"N"
            ~doc:"How many metric counters/histograms to show.")
    in
    Cmd.v
      (Cmd.info "report"
         ~doc:
           "Render one run record: stage timings, per-design Fmax, cache \
            traffic, and metric quantiles (p50/p95/p99)")
      Term.(const run $ ledger_arg $ run_arg $ top_arg)
  in
  let cmd_list_runs =
    let run ledger =
      let path = ledger_path ledger in
      match Ledger.load ~path with
      | Error msg -> usage msg
      | Ok [] -> Printf.printf "ledger %s has no runs\n" path
      | Ok runs ->
        List.iteri
          (fun i r ->
            Printf.printf "%4d  %s\n" (i + 1) (Obs_report.summary_line r))
          runs
    in
    Cmd.v
      (Cmd.info "list" ~doc:"List the ledger's runs, oldest first")
      Term.(const run $ ledger_arg)
  in
  let cmd_diff =
    let run ledger ref_a ref_b =
      let runs = load_runs (ledger_path ledger) in
      print_string
        (Obs_report.diff (run_of_ref ~runs ref_a) (run_of_ref ~runs ref_b))
    in
    let a_arg =
      Arg.(required & pos 0 (some string) None & info [] ~docv:"RUN_A")
    in
    let b_arg =
      Arg.(required & pos 1 (some string) None & info [] ~docv:"RUN_B")
    in
    Cmd.v
      (Cmd.info "diff"
         ~doc:"Compare two runs stage by stage (timings, totals, Fmax)")
      Term.(const run $ ledger_arg $ a_arg $ b_arg)
  in
  let cmd_regress =
    let run ledger baseline_ref ref_ pct min_ms =
      let path = ledger_path ledger in
      let runs =
        match Ledger.load ~path with Ok rs -> rs | Error msg -> usage msg
      in
      let baseline = run_of_ref ~runs baseline_ref in
      let current = run_of_ref ~runs ref_ in
      let v =
        Obs_report.regress ~min_ms ~baseline ~current ~max_slowdown_pct:pct ()
      in
      print_string v.Obs_report.v_table;
      if v.Obs_report.v_ok then
        print_endline "OK: no regression beyond the threshold"
      else begin
        print_newline ();
        List.iter
          (fun m -> Printf.printf "REGRESSION: %s\n" m)
          v.Obs_report.v_failures;
        exit 1
      end
    in
    let baseline_arg =
      Arg.(
        required
        & opt (some string) None
        & info [ "baseline" ] ~docv:"REF"
            ~doc:
              "Baseline run: a ledger reference or a file holding \
               hlsb-run/1 record(s).")
    in
    let run_flag_arg =
      Arg.(
        value & opt string "last"
        & info [ "run" ] ~docv:"REF"
            ~doc:"Run under test (default: the newest ledger record).")
    in
    let pct_arg =
      Arg.(
        value & opt float 25.
        & info [ "max-slowdown" ] ~docv:"PCT"
            ~doc:
              "Fail when any comparable stage (or the total) is more than \
               $(docv) percent slower than the baseline, or a shared \
               design's Fmax drops by more than the same margin.")
    in
    let min_ms_arg =
      Arg.(
        value & opt float 1.0
        & info [ "min-ms" ] ~docv:"MS"
            ~doc:
              "Ignore stages whose baseline time is below $(docv) \
               (sub-millisecond stages are timer noise).")
    in
    Cmd.v
      (Cmd.info "regress"
         ~doc:
           "Perf-regression sentinel: exit 1 when the current run is more \
            than --max-slowdown percent slower than the baseline (the CI \
            gate)")
      Term.(
        const run $ ledger_arg $ baseline_arg $ run_flag_arg $ pct_arg
        $ min_ms_arg)
  in
  let cmd_prom =
    let run ledger ref_ =
      let runs = load_runs (ledger_path ledger) in
      let r = run_of_ref ~runs ref_ in
      match Obs_report.snapshot_of_run r with
      | None ->
        usage
          (Printf.sprintf "run %s carries no metrics snapshot" r.Ledger.r_id)
      | Some snap -> print_string (Prom.of_snapshot snap)
    in
    Cmd.v
      (Cmd.info "prom"
         ~doc:
           "Prometheus text-format exposition of a run's metrics snapshot")
      Term.(const run $ ledger_arg $ run_arg)
  in
  Cmd.group
    (Cmd.info "obs"
       ~doc:
         "The run ledger: list, report, diff, Prometheus export, and the \
          perf-regression gate")
    [ cmd_list_runs; cmd_report; cmd_diff; cmd_regress; cmd_prom ]

let simple name doc f = Cmd.v (Cmd.info name ~doc) Term.(const f $ const ())

let cmd_table1 =
  simple "table1" "Regenerate Table 1" (fun () ->
    print_string (Experiments.render_table1 (Experiments.run_table1 ())))

let cmd_table2 =
  simple "table2" "Regenerate Table 2" (fun () ->
    print_string
      (Experiments.render_variants ~title:"Table 2 (paper: 195/299/301 MHz)"
         (Experiments.run_table2 ())))

let cmd_table3 =
  simple "table3" "Regenerate Table 3" (fun () ->
    print_string
      (Experiments.render_variants ~title:"Table 3 (paper: 187/208/278 MHz)"
         (Experiments.run_table3 ())))

let cmd_fig9 =
  simple "fig9" "Regenerate Figure 9" (fun () ->
    print_string (Experiments.render_fig9 (Experiments.run_fig9 ())))

let cmd_fig15 =
  simple "fig15" "Regenerate Figure 15" (fun () ->
    print_string (Experiments.render_fig15 (Experiments.run_fig15 ())))

let cmd_fig16 =
  simple "fig16" "Regenerate Figure 16" (fun () ->
    print_string (Experiments.render_fig16 (Experiments.run_fig16 ())))

let cmd_fig17 =
  simple "fig17" "Regenerate Figure 17" (fun () ->
    print_string (Experiments.render_fig17 (Experiments.run_fig17 ())))

let cmd_fig19 =
  simple "fig19" "Regenerate Figure 19" (fun () ->
    print_string (Experiments.render_fig19 (Experiments.run_fig19 ())))

let cmd_ablation =
  simple "ablation" "Run the design-choice ablations" (fun () ->
    print_string (Experiments.render_ablations (Experiments.run_ablations ())))

let () =
  let info =
    Cmd.info "hlsbc" ~version:"1.0.0"
      ~doc:"Broadcast-aware HLS timing optimization (DAC 2020 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            cmd_list;
            cmd_passes;
            cmd_classify;
            cmd_compile;
            cmd_profile;
            cmd_calibrate;
            cmd_path;
            cmd_schedule;
            cmd_cc;
            cmd_emit;
            cmd_fuzz;
            cmd_explore;
            cmd_obs;
            cmd_table1;
            cmd_table2;
            cmd_table3;
            cmd_fig9;
            cmd_fig15;
            cmd_fig16;
            cmd_fig17;
            cmd_fig19;
            cmd_ablation;
          ]))
